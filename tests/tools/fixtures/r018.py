"""R018 fixture: ledger files may only be written via repro.obs.ledger.

Linted under the synthetic path ``src/repro/obs/demo18.py`` so the
production pass scoping (every non-test repro module except
``repro.obs.ledger`` itself) applies directly.
"""

import json
from pathlib import Path


def bad_builtin_append(ledger_dir, entry):
    ledger_path = Path(ledger_dir) / "ledger.jsonl"
    with open(ledger_path, "a", encoding="utf-8") as handle:  # expect: R018
        handle.write(json.dumps(entry) + "\n")


def bad_path_open(ledger_dir):
    with (ledger_dir / "ledger.jsonl").open("w") as handle:  # expect: R018
        handle.write("{}\n")


def bad_write_text(ledger_path, text):
    ledger_path.write_text(text, encoding="utf-8")  # expect: R018


def ok_read(ledger_path):
    with open(ledger_path, encoding="utf-8") as handle:
        return handle.read()


def ok_unrelated_write(report_path, text):
    with open(report_path, "w", encoding="utf-8") as handle:
        handle.write(text)
