"""Fixture: R013 — order-sensitive accumulation over unordered sources.

Linted under the synthetic path ``src/repro/obs/metrics.py`` so the
production merge seed ``MetricsRegistry.absorb_snapshot`` applies.
Integral accumulation (``int(...)``, ``len(...)``, int literals) is
order-independent and must not be flagged.
"""


class MetricsRegistry:
    """Carrier for the merge-seed method name."""

    def absorb_snapshot(self, snapshot: dict) -> float:
        """Float accumulation in dict-view order, and sum() over a set."""
        total = 0.0
        for _key, value in snapshot.items():
            total += float(value)  # expect: R013
        count = 0
        for _key in snapshot.keys():
            count += 1  # int literal: exempt
        weights = {0.1, 0.2, 0.3}
        return total + sum(weights) + count  # expect: R013
