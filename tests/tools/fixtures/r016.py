"""Fixture: R016 — entry points lacking contract/span coverage.

Linted under a synthetic ``src/repro/core/...`` path. ``mine`` reaches
no contract or span marker on any path; ``mine_weighted`` is covered by
a span, ``mine_top_k`` by a contract check in a callee.
"""


def mine(db: object) -> list:  # expect: R016
    """No contract, no span, anywhere reachable."""
    return _search(db)


def _search(db: object) -> list:
    """Marker-free helper."""
    return []


def mine_weighted(db: object, span: object) -> list:
    """Covered: opens a span directly."""
    with span("mine_weighted"):
        return []


def mine_top_k(db: object) -> list:
    """Covered: a reachable callee carries a contract check."""
    return _checked_search(db)


def _checked_search(db: object, check: object = None) -> list:
    """Carries the contract marker."""
    check(db is not None, "db required")
    return []
