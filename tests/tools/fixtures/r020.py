"""R020 fixture: ledger entries are assembled by build_entry, not inline.

Linted under the synthetic path ``src/repro/obs/demo20.py`` so the
production pass scoping (every non-test repro module except
``repro.obs.ledger`` itself) applies directly. ``.append`` with a dict
literal on a ledger receiver bypasses the schema stamp and the
cost/plan/calibration normalisation; passing a ``build_entry(...)``
result (or any non-literal expression) is fine.
"""


def bad_inline_entry(ledger, result):
    ledger.append({"schema": 1, "patterns": len(result.patterns)})  # expect: R020


def bad_inline_comprehension(run_ledger, rows):
    run_ledger.append({k: v for k, v in rows})  # expect: R020


def ok_build_entry(ledger, build_entry, result):
    ledger.append(build_entry(result=result))


def ok_prebuilt_name(ledger, entry):
    ledger.append(entry)


def ok_unrelated_list(rows):
    rows.append({"not": "a ledger"})
