"""Meta-tests: every lint rule is documented, tested, and fixtured.

Guards the analyzer's own upkeep: a rule added without docs, without a
test that exercises it, or (for the graph passes) without a seeded
fixture module fails here, not in review.
"""

from __future__ import annotations

import re
from pathlib import Path

from tools.repro_lint.driver import rule_catalog

REPO_ROOT = Path(__file__).resolve().parents[2]
DOCS = REPO_ROOT / "docs" / "static-analysis.md"
TESTS_DIR = REPO_ROOT / "tests" / "tools"
FIXTURE_DIR = TESTS_DIR / "fixtures"

DEEP_RULES = sorted(
    code for code in rule_catalog(deep=True) if code >= "R010"
)


def _tests_corpus() -> str:
    # Fixture modules count: test_analyzer_passes parameterizes over
    # every fixture and asserts its `# expect:` markers fire exactly.
    files = [
        path
        for path in sorted(TESTS_DIR.glob("test_*.py"))
        if path.name != "test_meta.py"
    ] + sorted(FIXTURE_DIR.glob("r*.py"))
    return "\n".join(path.read_text() for path in files)


class TestRuleInventory:
    def test_catalog_has_no_gaps(self):
        codes = sorted(rule_catalog(deep=True))
        numbers = [int(code[1:]) for code in codes]
        assert numbers == list(range(1, len(codes) + 1))

    def test_every_rule_has_a_nonempty_summary(self):
        for code, summary in rule_catalog(deep=True).items():
            assert summary and not summary.endswith("."), code

    def test_every_rule_is_documented(self):
        docs = DOCS.read_text()
        for code in rule_catalog(deep=True):
            assert re.search(rf"\b{code}\b", docs), (
                f"{code} missing from docs/static-analysis.md"
            )

    def test_every_rule_is_exercised_by_tests(self):
        corpus = _tests_corpus()
        for code in rule_catalog(deep=True):
            assert re.search(rf"\b{code}\b", corpus), (
                f"{code} never referenced by a tools test"
            )

    def test_every_deep_rule_has_a_seeded_fixture(self):
        for code in DEEP_RULES:
            fixture = FIXTURE_DIR / f"{code.lower()}.py"
            assert fixture.is_file(), f"missing fixture for {code}"
            assert f"# expect: {code}" in fixture.read_text(), (
                f"{fixture.name} seeds no `# expect: {code}` marker"
            )

    def test_design_and_docs_cover_the_deep_analyzer(self):
        design = (REPO_ROOT / "DESIGN.md").read_text()
        assert "Machine-checked determinism" in design
        assert "lint-deep" in (REPO_ROOT / "Makefile").read_text()
        ci = (REPO_ROOT / ".github" / "workflows" / "ci.yml").read_text()
        assert "--deep" in ci and "sarif" in ci.lower()
