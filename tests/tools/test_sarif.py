"""Structural validation of the SARIF 2.1.0 emitter.

The container has no jsonschema package, so this is a hand-rolled check
of every SARIF 2.1.0 constraint the emitter relies on: top-level
version/$schema, a single run with a tool driver, a declared rule
catalog, and results whose ruleIds, messages, and physical locations
are all well-formed (1-based lines/columns, relative forward-slash
URIs).
"""

from __future__ import annotations

import json

from tools.repro_lint.driver import rule_catalog
from tools.repro_lint.engine import Violation
from tools.repro_lint.sarif import (
    SARIF_SCHEMA_URI,
    SARIF_VERSION,
    render_sarif,
    to_sarif,
)

SAMPLE = [
    Violation("src/repro/engine.py", 12, 4, "R010", "unordered iteration"),
    Violation("src\\repro\\obs\\live.py", 1, 0, "R013", "float accumulation"),
    Violation("src/repro/core/ptpminer.py", 0, 0, "R015", "cache mutation"),
]


def sample_doc() -> dict:
    return to_sarif(SAMPLE, rule_catalog(deep=True))


class TestSarifStructure:
    def test_top_level_envelope(self):
        doc = sample_doc()
        assert doc["version"] == SARIF_VERSION == "2.1.0"
        assert doc["$schema"] == SARIF_SCHEMA_URI
        assert "sarif" in doc["$schema"] and "2.1.0" in doc["$schema"]
        assert isinstance(doc["runs"], list) and len(doc["runs"]) == 1

    def test_driver_declares_full_rule_catalog(self):
        doc = sample_doc()
        driver = doc["runs"][0]["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        declared = {rule["id"] for rule in driver["rules"]}
        assert declared == set(rule_catalog(deep=True))
        for rule in driver["rules"]:
            assert rule["shortDescription"]["text"]
            assert rule["defaultConfiguration"]["level"] == "error"

    def test_results_reference_declared_rules(self):
        doc = sample_doc()
        run = doc["runs"][0]
        declared = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
        assert len(run["results"]) == len(SAMPLE)
        for result in run["results"]:
            assert result["ruleId"] in declared
            assert result["level"] == "error"
            assert result["message"]["text"]

    def test_locations_are_one_based_and_forward_slashed(self):
        doc = sample_doc()
        for result in doc["runs"][0]["results"]:
            location = result["locations"][0]["physicalLocation"]
            uri = location["artifactLocation"]["uri"]
            assert "\\" not in uri and not uri.startswith("/")
            region = location["region"]
            # SARIF regions are 1-based; a 0 line/column is invalid.
            assert region["startLine"] >= 1
            assert region["startColumn"] >= 1

    def test_empty_result_set_is_valid(self):
        doc = to_sarif([], rule_catalog(deep=True))
        assert doc["runs"][0]["results"] == []
        assert doc["runs"][0]["tool"]["driver"]["rules"]

    def test_render_round_trips_through_json(self):
        text = render_sarif(SAMPLE, rule_catalog(deep=True))
        assert json.loads(text) == sample_doc()
