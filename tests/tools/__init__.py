"""Tests for the developer tooling (tools/)."""
