"""Tests for the project lint tool (``tools.repro_lint``).

Each rule gets a triggering snippet and a suppressed variant; the paths
passed to :func:`lint_source` are synthetic and exercise the scoping
logic (``src/repro`` modules vs. tests vs. everything else).
"""

from __future__ import annotations

import textwrap
from pathlib import Path

from tools.repro_lint import lint_source
from tools.repro_lint.engine import iter_python_files, main


def codes(source: str, path: str) -> list[str]:
    """Lint a dedented snippet and return the violation codes."""
    return [v.code for v in lint_source(textwrap.dedent(source), path)]


# ---------------------------------------------------------------------------
# R001 — direct Endpoint construction
# ---------------------------------------------------------------------------

def test_r001_flags_direct_construction():
    snippet = """
        from repro.temporal.endpoint import Endpoint

        ep = Endpoint("A", 0, 1)
    """
    assert codes(snippet, "tools/demo.py") == ["R001"]


def test_r001_exempts_endpoint_module_and_tests():
    snippet = """
        ep = Endpoint("A", 0, 1)
    """
    assert codes(snippet, "tests/test_demo.py") == []
    # The canonical encoder module itself may construct endpoints.
    assert "R001" not in codes(
        '"""Doc."""\n__all__: list[str] = []\nep = Endpoint("A", 0, 1)\n',
        "src/repro/temporal/endpoint.py",
    )


def test_r001_suppressible():
    snippet = """
        ep = Endpoint("A", 0, 1)  # repro-lint: ignore[R001]
    """
    assert codes(snippet, "tools/demo.py") == []


# ---------------------------------------------------------------------------
# R002 — mutable default arguments
# ---------------------------------------------------------------------------

def test_r002_flags_mutable_defaults():
    snippet = """
        def f(x=[]):
            return x

        def g(*, y={}):
            return y

        def h(z=dict()):
            return z
    """
    assert codes(snippet, "tools/demo.py") == ["R002", "R002", "R002"]


def test_r002_allows_immutable_defaults():
    snippet = """
        def f(x=(), y=None, z=0):
            return (x, y, z)
    """
    assert codes(snippet, "tools/demo.py") == []


def test_r002_suppressible():
    snippet = """
        def f(x=[]):  # repro-lint: ignore[R002]
            return x
    """
    assert codes(snippet, "tools/demo.py") == []


# ---------------------------------------------------------------------------
# R003 — public API annotations and docstrings (src/repro only)
# ---------------------------------------------------------------------------

def test_r003_flags_bare_public_function():
    snippet = """
        __all__ = ["f"]


        def f(x):
            return x
    """
    got = codes(snippet, "src/repro/core/demo.py")
    # Missing docstring, unannotated parameter, missing return annotation.
    assert got == ["R003", "R003", "R003"]


def test_r003_passes_fully_typed_function():
    snippet = '''
        __all__ = ["f"]


        def f(x: int) -> int:
            """Identity."""
            return x
    '''
    assert codes(snippet, "src/repro/core/demo.py") == []


def test_r003_only_applies_inside_repro_src():
    snippet = """
        def f(x):
            return x
    """
    assert codes(snippet, "tools/demo.py") == []
    assert codes(snippet, "tests/test_demo.py") == []


def test_r003_suppressible():
    snippet = """
        __all__ = ["f"]


        def f(x):  # repro-lint: ignore[R003]
            return x
    """
    assert codes(snippet, "src/repro/core/demo.py") == []


# ---------------------------------------------------------------------------
# R004 — __all__ present and consistent (src/repro only)
# ---------------------------------------------------------------------------

def test_r004_flags_missing_dunder_all():
    snippet = '''
        """Doc."""


        def f() -> None:
            """Doc."""
    '''
    assert "R004" in codes(snippet, "src/repro/core/demo.py")


def test_r004_flags_inconsistent_dunder_all():
    unlisted = '''
        __all__: list[str] = []


        def f() -> None:
            """Doc."""
    '''
    undefined = '''
        __all__ = ["ghost"]
    '''
    assert codes(unlisted, "src/repro/core/demo.py") == ["R004"]
    assert codes(undefined, "src/repro/core/demo.py") == ["R004"]


def test_r004_passes_consistent_module():
    snippet = '''
        __all__ = ["f", "helper"]

        from tools.repro_lint import lint_source as helper


        def f() -> None:
            """Doc."""
    '''
    assert codes(snippet, "src/repro/core/demo.py") == []


def test_r004_suppressible():
    # The missing-__all__ violation anchors at line 1, so the suppression
    # comment must sit on the file's first line.
    source = '# repro-lint: ignore[R004]\n"""Doc."""\n'
    assert [v.code for v in lint_source(source, "src/repro/core/demo.py")] == []


# ---------------------------------------------------------------------------
# R005 — wall-clock time in core mining code
# ---------------------------------------------------------------------------

def test_r005_flags_wall_clock_in_core():
    snippet = """
        __all__: list[str] = []
        import time

        _T = time.time()
    """
    # In repro.core the import itself additionally trips R006.
    assert codes(snippet, "src/repro/core/demo.py") == ["R006", "R005"]
    assert codes(snippet, "src/repro/temporal/demo.py") == ["R005"]


def test_r005_flags_time_import_and_ignores_perf_counter():
    bad_import = """
        __all__: list[str] = []
        from time import time
    """
    ok = """
        __all__: list[str] = []
        import time

        _T = time.perf_counter()
    """
    assert codes(bad_import, "src/repro/core/demo.py") == ["R005", "R006"]
    # perf_counter passes R005, but the raw import still trips R006 in
    # repro.core; repro.temporal allows it.
    assert codes(ok, "src/repro/core/demo.py") == ["R006"]
    assert codes(ok, "src/repro/temporal/demo.py") == []


def test_r005_scoped_to_core_packages():
    snippet = """
        __all__: list[str] = []
        import time

        _T = time.time()
    """
    assert codes(snippet, "src/repro/harness/demo.py") == []
    assert codes(snippet, "tools/demo.py") == []


def test_r005_suppressible():
    snippet = """
        __all__: list[str] = []
        import time  # repro-lint: ignore[R006]

        _T = time.time()  # repro-lint: ignore[R005]
    """
    assert codes(snippet, "src/repro/core/demo.py") == []


# ---------------------------------------------------------------------------
# R006 — raw time imports in repro.core
# ---------------------------------------------------------------------------

def test_r006_flags_any_time_import_in_core():
    plain = """
        __all__: list[str] = []
        import time
    """
    aliased = """
        __all__: list[str] = []
        import time as walltime
    """
    from_import = """
        __all__: list[str] = []
        from time import perf_counter
    """
    assert codes(plain, "src/repro/core/demo.py") == ["R006"]
    assert codes(aliased, "src/repro/core/demo.py") == ["R006"]
    assert codes(from_import, "src/repro/core/demo.py") == ["R006"]


def test_r006_scoped_to_repro_core_and_obs():
    snippet = """
        __all__: list[str] = []
        import time
    """
    # repro.core and repro.obs must route through repro.obs.clock...
    assert codes(snippet, "src/repro/obs/demo.py") == ["R006"]
    assert codes(snippet, "src/repro/obs/live.py") == ["R006"]
    # ...other packages are free.
    assert codes(snippet, "src/repro/temporal/demo.py") == []
    assert codes(snippet, "src/repro/harness/demo.py") == []
    assert codes(snippet, "tools/demo.py") == []
    assert codes(snippet, "tests/test_demo.py") == []


def test_r006_exempts_the_clock_seam():
    # repro.obs.clock IS the injection seam; it alone may touch time.
    snippet = """
        __all__: list[str] = []
        from time import perf_counter
    """
    assert codes(snippet, "src/repro/obs/clock.py") == []


def test_r006_allows_similarly_named_modules():
    snippet = """
        __all__: list[str] = []
        import timeit
        from datetime import datetime
    """
    assert codes(snippet, "src/repro/core/demo.py") == []


def test_r006_suppressible():
    snippet = """
        __all__: list[str] = []
        import time  # repro-lint: ignore[R006]
    """
    assert codes(snippet, "src/repro/core/demo.py") == []


# ---------------------------------------------------------------------------
# R007 — profiling imports in mining code
# ---------------------------------------------------------------------------

def test_r007_flags_profiling_imports_in_mining_code():
    plain = """
        __all__: list[str] = []
        import cProfile
    """
    aliased = """
        __all__: list[str] = []
        import tracemalloc as tm
    """
    from_import = """
        __all__: list[str] = []
        from pstats import Stats
    """
    assert codes(plain, "src/repro/core/demo.py") == ["R007"]
    assert codes(aliased, "src/repro/baselines/demo.py") == ["R007"]
    assert codes(from_import, "src/repro/core/demo.py") == ["R007"]


def test_r007_scoped_to_mining_packages():
    snippet = """
        __all__: list[str] = []
        import cProfile
        import tracemalloc
    """
    # The profiling/measurement layers themselves legitimately import
    # these; only the mined-over hot path is protected.
    assert codes(snippet, "src/repro/obs/demo.py") == []
    assert codes(snippet, "src/repro/harness/demo.py") == []
    assert codes(snippet, "tools/demo.py") == []
    assert codes(snippet, "tests/test_demo.py") == []


def test_r007_allows_similarly_named_modules():
    snippet = """
        __all__: list[str] = []
        import profiles
        from profiling import hook
    """
    assert codes(snippet, "src/repro/core/demo.py") == []


def test_r007_suppressible():
    snippet = """
        __all__: list[str] = []
        import tracemalloc  # repro-lint: ignore[R007]
    """
    assert codes(snippet, "src/repro/core/demo.py") == []


# ---------------------------------------------------------------------------
# engine behaviour
# ---------------------------------------------------------------------------

def test_bare_ignore_suppresses_every_rule():
    snippet = """
        def f(x=[]):  # repro-lint: ignore
            return x
    """
    assert codes(snippet, "tools/demo.py") == []


def test_violations_carry_location_and_render():
    found = lint_source("def f(x=[]):\n    return x\n", "tools/demo.py")
    assert len(found) == 1
    violation = found[0]
    assert (violation.line, violation.code) == (1, "R002")
    assert violation.render().startswith("tools/demo.py:1:")
    assert "R002" in violation.render()


def test_iter_python_files_skips_pycache(tmp_path: Path):
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "mod.py").write_text("x = 1\n")
    cache = tmp_path / "pkg" / "__pycache__"
    cache.mkdir()
    (cache / "mod.cpython-311.py").write_text("x = 1\n")
    found = list(iter_python_files([tmp_path]))
    assert [p.name for p in found] == ["mod.py"]


def test_main_exit_codes(tmp_path: Path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n")
    assert main([str(clean)]) == 0

    dirty = tmp_path / "dirty.py"
    dirty.write_text("def f(x=[]):\n    return x\n")
    assert main([str(dirty)]) == 1
    out = capsys.readouterr()
    assert "R002" in out.out

    assert main([str(tmp_path / "missing.txt")]) == 2


def test_repo_is_lint_clean():
    """The gate the CI runs: the shipped tree has zero violations."""
    root = Path(__file__).resolve().parents[2]
    assert main([str(root / "src"), str(root / "tests")]) == 0


# ---------------------------------------------------------------------------
# R008 — process pools outside repro.engine
# ---------------------------------------------------------------------------

def test_r008_flags_pool_construction_outside_engine():
    direct = """
        __all__: list[str] = []
        from concurrent.futures import ProcessPoolExecutor

        def _run():
            with ProcessPoolExecutor(max_workers=2) as pool:
                return pool
    """
    attribute = """
        __all__: list[str] = []
        import concurrent.futures

        def _run():
            return concurrent.futures.ProcessPoolExecutor()
    """
    assert codes(direct, "src/repro/core/demo.py") == ["R008"]
    assert codes(attribute, "src/repro/harness/demo.py") == ["R008"]


def test_r008_allows_the_engine_and_tests():
    snippet = """
        __all__: list[str] = []
        from concurrent.futures import ProcessPoolExecutor

        def _run():
            with ProcessPoolExecutor(max_workers=2) as pool:
                return pool
    """
    assert codes(snippet, "src/repro/engine.py") == []
    assert codes(snippet, "tests/test_demo.py") == []


def test_r008_ignores_bare_references():
    # Passing the class around (e.g. as a type annotation or a mock
    # target) is fine; only construction is fenced.
    snippet = """
        __all__: list[str] = []
        from concurrent.futures import ProcessPoolExecutor

        _POOL_TYPE = ProcessPoolExecutor
    """
    assert codes(snippet, "src/repro/core/demo.py") == []


def test_r008_suppressible():
    snippet = """
        __all__: list[str] = []
        from concurrent.futures import ProcessPoolExecutor

        def _run():
            return ProcessPoolExecutor()  # repro-lint: ignore[R008]
    """
    assert codes(snippet, "src/repro/core/demo.py") == []


# ---------------------------------------------------------------------------
# R009 — multiprocessing queues/pipes outside the telemetry bus + engine
# ---------------------------------------------------------------------------

def test_r009_flags_mp_primitives_outside_allowed_modules():
    attribute = """
        __all__: list[str] = []
        import multiprocessing

        def _run():
            return multiprocessing.Queue()
    """
    aliased = """
        __all__: list[str] = []
        import multiprocessing as mp

        def _run():
            return mp.Manager()
    """
    from_import = """
        __all__: list[str] = []
        from multiprocessing import Pipe as make_pipe

        def _run():
            return make_pipe()
    """
    assert codes(attribute, "src/repro/core/demo.py") == ["R009"]
    assert codes(aliased, "src/repro/harness/demo.py") == ["R009"]
    assert codes(from_import, "src/repro/obs/demo.py") == ["R009"]


def test_r009_allows_the_bus_engine_and_tests():
    snippet = """
        __all__: list[str] = []
        import multiprocessing

        def _run():
            return multiprocessing.SimpleQueue()
    """
    assert codes(snippet, "src/repro/obs/live.py") == []
    assert codes(snippet, "src/repro/engine.py") == []
    assert codes(snippet, "tests/test_demo.py") == []


def test_r009_ignores_unrelated_names():
    # Same-named callables from other modules, bare references, and
    # non-primitive multiprocessing attributes must not trip the rule.
    snippet = """
        __all__: list[str] = []
        import multiprocessing
        from queue import Queue

        def _run():
            local = Queue()
            count = multiprocessing.cpu_count()
            kind = multiprocessing.Queue
            return (local, count, kind)
    """
    assert codes(snippet, "src/repro/core/demo.py") == []


def test_r009_suppressible():
    snippet = """
        __all__: list[str] = []
        import multiprocessing

        def _run():
            return multiprocessing.Queue()  # repro-lint: ignore[R009]
    """
    assert codes(snippet, "src/repro/core/demo.py") == []
