"""Randomized agreement of P-TPMiner with the brute-force oracle.

These are the load-bearing correctness tests: across random databases
with timestamp ties (shared pointsets), duplicate labels, and point
events, every pruning configuration of P-TPMiner must produce the exact
pattern-to-support mapping the exhaustive oracle computes.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.bruteforce import BruteForceMiner
from repro.core.pruning import PruningConfig
from repro.core.ptpminer import PTPMiner

from tests.conftest import make_random_db

CONFIGS = [
    PruningConfig.all(),
    PruningConfig.none(),
    PruningConfig(point=True, pair=False, postfix=False),
    PruningConfig(point=False, pair=True, postfix=False),
    PruningConfig(point=False, pair=False, postfix=True),
]


@pytest.mark.parametrize("seed", range(12))
@pytest.mark.parametrize("min_sup", [0.2, 0.4])
def test_tp_agreement(seed, min_sup):
    db = make_random_db(seed, num_sequences=10, labels="AB", max_events=5,
                        time_max=6)
    expected = BruteForceMiner(min_sup).mine(db).as_dict()
    for config in CONFIGS:
        got = PTPMiner(min_sup, pruning=config).mine(db).as_dict()
        assert got == expected, config.describe()


@pytest.mark.parametrize("seed", range(12))
@pytest.mark.parametrize("min_sup", [0.2, 0.4])
def test_htp_agreement(seed, min_sup):
    db = make_random_db(seed, num_sequences=10, labels="AB", max_events=5,
                        time_max=6, point_fraction=0.4)
    expected = BruteForceMiner(min_sup, mode="htp").mine(db).as_dict()
    for config in CONFIGS:
        got = PTPMiner(min_sup, mode="htp", pruning=config).mine(
            db
        ).as_dict()
        assert got == expected, config.describe()


def test_heavy_duplicates_agreement():
    """Single-label databases maximize duplicate-occurrence ambiguity."""
    for seed in range(8):
        db = make_random_db(seed, num_sequences=8, labels="A",
                            max_events=5, time_max=5)
        expected = BruteForceMiner(0.25).mine(db).as_dict()
        got = PTPMiner(0.25).mine(db).as_dict()
        assert got == expected


def test_dense_tie_agreement():
    """Tiny time domain forces many simultaneous endpoints."""
    for seed in range(8):
        db = make_random_db(seed, num_sequences=8, labels="AB",
                            max_events=4, time_max=2)
        expected = BruteForceMiner(0.25).mine(db).as_dict()
        got = PTPMiner(0.25).mine(db).as_dict()
        assert got == expected


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    min_sup=st.sampled_from([0.2, 0.3, 0.5]),
    point_fraction=st.sampled_from([0.0, 0.3]),
)
def test_agreement_property(seed, min_sup, point_fraction):
    db = make_random_db(seed, num_sequences=8, labels="ABC", max_events=4,
                        time_max=6, point_fraction=point_fraction)
    mode = "htp" if point_fraction else "tp"
    expected = BruteForceMiner(min_sup, mode=mode).mine(db).as_dict()
    got = PTPMiner(min_sup, mode=mode).mine(db).as_dict()
    assert got == expected


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_anti_monotonicity_of_result_sets(seed):
    """Raising the threshold can only shrink the result set."""
    db = make_random_db(seed, num_sequences=10)
    low = PTPMiner(0.2).mine(db).as_dict()
    high = PTPMiner(0.5).mine(db).as_dict()
    assert set(high) <= set(low)
    for pattern, support in high.items():
        assert low[pattern] == support


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000), factor=st.integers(2, 4))
def test_replication_preserves_pattern_set(seed, factor):
    """Replicating the database preserves relative supports exactly."""
    db = make_random_db(seed, num_sequences=6)
    replicated = db.replicated(factor)
    base = PTPMiner(0.34).mine(db).as_dict()
    big = PTPMiner(0.34).mine(replicated).as_dict()
    assert set(big) == set(base)
    for pattern, support in base.items():
        assert big[pattern] == support * factor
