"""Unit tests for projection states and deduplication."""

from repro.core.projection import EMPTY_STATE, State, dedupe_states


def st_(pos, pending=(), used=(), window=None):
    return State(pos, frozenset(pending), frozenset(used), window)


class TestState:
    def test_empty_state(self):
        assert EMPTY_STATE.pos == -1
        assert not EMPTY_STATE.pending
        assert not EMPTY_STATE.used
        assert EMPTY_STATE.window_start is None

    def test_pending_socc_lookup(self):
        state = st_(3, pending={(0, 1, 2), (1, 1, 1)})
        assert state.pending_socc(0, 1) == 2
        assert state.pending_socc(1, 1) == 1
        assert state.pending_socc(0, 2) is None

    def test_states_hashable(self):
        assert len({st_(1), st_(1)}) == 1

    def test_window_start_distinguishes_states(self):
        assert st_(1, window=0.0) != st_(1, window=3.0)


class TestDedupe:
    def test_exact_duplicates_removed(self):
        states = [st_(2, {(0, 1, 1)}), st_(2, {(0, 1, 1)})]
        assert len(dedupe_states(states)) == 1

    def test_distinct_states_kept(self):
        a = st_(2, pending={(0, 1, 1)})
        b = st_(2, pending={(0, 1, 2)})
        c = st_(3, pending={(0, 1, 1)})
        assert set(dedupe_states([a, b, c])) == {a, b, c}

    def test_first_seen_order_preserved(self):
        a, b, c = st_(3), st_(1), st_(2)
        assert dedupe_states([a, b, c, a, b]) == (a, b, c)

    def test_empty_and_singleton(self):
        assert dedupe_states([]) == ()
        only = st_(4)
        assert dedupe_states([only]) == (only,)

    def test_equal_cardinality_used_sets_both_kept(self):
        # The structural fact the module relies on: embeddings of one
        # prefix always consume equally many occurrences, so used sets
        # are never strict subsets — both incomparable states stay.
        a = st_(2, used={(0, 1)})
        b = st_(2, used={(0, 2)})
        assert set(dedupe_states([a, b])) == {a, b}
