"""Unit tests for pruning configuration and counters."""

from repro.core.pruning import PruneCounters, PruningConfig


class TestPruningConfig:
    def test_default_all_on(self):
        config = PruningConfig()
        assert config.point and config.pair and config.postfix

    def test_none_and_all_constructors(self):
        assert PruningConfig.none().describe() == "none"
        assert PruningConfig.all().describe() == "point+pair+postfix"

    def test_describe_partial(self):
        assert PruningConfig(point=True, pair=False, postfix=True).describe() == (
            "point+postfix"
        )

    def test_frozen(self):
        import pytest

        with pytest.raises(AttributeError):
            PruningConfig().point = False  # type: ignore[misc]

    def test_equality(self):
        assert PruningConfig.all() == PruningConfig()
        assert PruningConfig.none() != PruningConfig()


class TestPruneCounters:
    def test_defaults_zero(self):
        counters = PruneCounters()
        assert counters.nodes_expanded == 0
        assert counters.extras == {}

    def test_as_dict_contains_all_fields(self):
        counters = PruneCounters(nodes_expanded=3, pruned_pair=2)
        d = counters.as_dict()
        assert d["nodes_expanded"] == 3
        assert d["pruned_pair"] == 2
        assert "patterns_emitted" in d

    def test_extras_merged_into_dict(self):
        counters = PruneCounters()
        counters.extras["pruned_apriori"] = 9
        assert counters.as_dict()["pruned_apriori"] == 9

    def test_independent_instances(self):
        a, b = PruneCounters(), PruneCounters()
        a.extras["x"] = 1
        assert "x" not in b.extras
