"""Unit tests for pruning configuration and counters."""

from repro.core.pruning import PruneCounters, PruningConfig


class TestPruningConfig:
    def test_default_all_on(self):
        config = PruningConfig()
        assert config.point and config.pair and config.postfix

    def test_none_and_all_constructors(self):
        assert PruningConfig.none().describe() == "none"
        assert PruningConfig.all().describe() == "point+pair+postfix"

    def test_describe_partial(self):
        assert PruningConfig(point=True, pair=False, postfix=True).describe() == (
            "point+postfix"
        )

    def test_frozen(self):
        import pytest

        with pytest.raises(AttributeError):
            PruningConfig().point = False  # type: ignore[misc]

    def test_equality(self):
        assert PruningConfig.all() == PruningConfig()
        assert PruningConfig.none() != PruningConfig()


class TestPruneCounters:
    def test_defaults_zero(self):
        counters = PruneCounters()
        assert counters.nodes_expanded == 0
        assert counters.extras == {}

    def test_as_dict_contains_all_fields(self):
        counters = PruneCounters(nodes_expanded=3, pruned_pair=2)
        d = counters.as_dict()
        assert d["nodes_expanded"] == 3
        assert d["pruned_pair"] == 2
        assert "patterns_emitted" in d

    def test_extras_merged_into_dict(self):
        counters = PruneCounters()
        counters.extras["pruned_apriori"] = 9
        assert counters.as_dict()["pruned_apriori"] == 9

    def test_independent_instances(self):
        a, b = PruneCounters(), PruneCounters()
        a.extras["x"] = 1
        assert "x" not in b.extras


class TestPruneCountersMerge:
    def test_merge_adds_every_field_and_extras(self):
        a = PruneCounters(nodes_expanded=3, pruned_pair=1)
        a.extras["pruned_apriori"] = 2
        b = PruneCounters(nodes_expanded=4, patterns_emitted=5)
        b.extras["pruned_apriori"] = 7
        b.extras["other"] = 1
        a.merge(b)
        assert a.nodes_expanded == 7
        assert a.pruned_pair == 1
        assert a.patterns_emitted == 5
        assert a.extras == {"pruned_apriori": 9, "other": 1}

    def test_merge_with_zero_is_identity(self):
        a = PruneCounters(nodes_expanded=3, pruned_postfix_branches=2)
        before = a.as_dict()
        a.merge(PruneCounters())
        assert a.as_dict() == before
