"""Unit tests for the counting primitives (document frequency, pair tables)."""

from repro.core.counting import PairTables, symbol_document_frequency
from repro.model.database import ESequenceDatabase
from repro.temporal.endpoint import FINISH, START, EncodedDatabase

from tests.conftest import seq


def encode(*seqs):
    return EncodedDatabase(ESequenceDatabase(list(seqs)))


class TestDocumentFrequency:
    def test_counts_sequences_not_occurrences(self):
        enc = encode(
            seq((0, 1, "A"), (2, 3, "A")),  # A twice in one sequence
            seq((0, 1, "A")),
            seq((0, 1, "B")),
        )
        df = symbol_document_frequency(enc, [1.0, 1.0, 1.0])
        assert df[enc.sym("A", START)] == 2
        assert df[enc.sym("A", FINISH)] == 2
        assert df[enc.sym("B", START)] == 1

    def test_weighted(self):
        enc = encode(seq((0, 1, "A")), seq((0, 1, "A")))
        df = symbol_document_frequency(enc, [0.25, 0.5])
        assert df[enc.sym("A", START)] == 0.75

    def test_empty_sequences_contribute_nothing(self):
        enc = encode(seq(), seq((0, 1, "A")))
        df = symbol_document_frequency(enc, [1.0, 1.0])
        assert df[enc.sym("A", START)] == 1


class TestPairTables:
    def test_s_pair_counts_strictly_later(self):
        enc = encode(
            seq((0, 1, "A"), (2, 3, "B")),  # B entirely after A
            seq((2, 3, "A"), (0, 1, "B")),  # B entirely before A
        )
        pairs = PairTables(enc, [1.0, 1.0])
        a_start = enc.sym("A", START)
        b_start = enc.sym("B", START)
        assert pairs.s_pair(a_start, b_start) == 1
        assert pairs.s_pair(b_start, a_start) == 1
        # A's finish comes after its start in both sequences.
        assert pairs.s_pair(a_start, enc.sym("A", FINISH)) == 2

    def test_i_pair_counts_shared_pointsets(self):
        enc = encode(
            seq((0, 3, "A"), (0, 5, "B")),  # starts share a pointset
            seq((0, 3, "A"), (4, 5, "B")),
        )
        pairs = PairTables(enc, [1.0, 1.0])
        a_start = enc.sym("A", START)
        b_start = enc.sym("B", START)
        assert pairs.i_pair(a_start, b_start) == 1
        assert pairs.i_pair(b_start, a_start) == 1  # symmetric

    def test_i_pair_same_symbol_needs_two_tokens(self):
        enc = encode(
            seq((0, 3, "A"), (0, 5, "A")),  # two A starts at time 0
            seq((0, 3, "A")),
        )
        pairs = PairTables(enc, [1.0, 1.0])
        a_start = enc.sym("A", START)
        assert pairs.i_pair(a_start, a_start) == 1

    def test_missing_pairs_are_zero(self):
        enc = encode(seq((0, 1, "A")))
        pairs = PairTables(enc, [1.0])
        assert pairs.s_pair(99, 100) == 0.0
        assert pairs.i_pair(99, 100) == 0.0

    def test_pair_bound_is_sound_upper_bound(self):
        """s_pair must upper-bound the support of the 2-token pattern."""
        from repro.core.ptpminer import PTPMiner

        db = ESequenceDatabase(
            [
                seq((0, 1, "A"), (2, 3, "B")),
                seq((0, 1, "A"), (2, 3, "B")),
                seq((0, 4, "A"), (2, 3, "B")),
            ]
        )
        enc = EncodedDatabase(db)
        pairs = PairTables(enc, [1.0] * 3)
        result = PTPMiner(min_sup=1.0).mine(db)
        for item in result.patterns:
            if item.pattern.num_tokens < 2:
                continue
            tokens = [e for ps in item.pattern.pointsets for e in ps]
            first = enc.sym(tokens[0].label, tokens[0].kind)
            last = enc.sym(tokens[-1].label, tokens[-1].kind)
            assert pairs.s_pair(first, last) >= item.support
