"""Unit tests for P-TPMiner: semantics, modes, limits, determinism."""

import pytest

from repro.core.pruning import PruningConfig
from repro.core.ptpminer import PTPMiner, mine
from repro.model.database import ESequenceDatabase
from repro.model.pattern import TemporalPattern

from tests.conftest import make_random_db


def pat(text):
    return TemporalPattern.parse(text)


class TestBasicMining:
    def test_single_sequence_all_patterns(self):
        db = ESequenceDatabase.from_event_lists([[(0, 4, "A"), (2, 6, "B")]])
        result = PTPMiner(min_sup=1.0).mine(db)
        assert result.as_dict() == {
            pat("(A+) (A-)"): 1,
            pat("(B+) (B-)"): 1,
            pat("(A+) (B+) (A-) (B-)"): 1,
        }

    def test_known_supports(self, clinical_db):
        result = PTPMiner(min_sup=2).mine(clinical_db)
        supports = result.as_dict()
        assert supports[pat("(fever+) (fever-)")] == 3
        assert supports[pat("(rash+) (rash-)")] == 4
        assert supports[pat("(fever+) (rash+) (rash-) (fever-)")] == 2

    def test_threshold_excludes_rare_patterns(self, clinical_db):
        result = PTPMiner(min_sup=2).mine(clinical_db)
        # 'fever meets rash' occurs once only.
        assert pat("(fever+) (fever- rash+) (rash-)") not in result.pattern_set()

    def test_absolute_min_sup(self, clinical_db):
        rel = PTPMiner(min_sup=0.5).mine(clinical_db)
        abs_ = PTPMiner(min_sup=2).mine(clinical_db)
        assert rel.as_dict() == abs_.as_dict()

    def test_empty_database(self):
        result = PTPMiner(min_sup=1).mine(ESequenceDatabase([]))
        assert result.patterns == []

    def test_database_of_empty_sequences(self):
        db = ESequenceDatabase.from_event_lists([[], []])
        assert PTPMiner(min_sup=1).mine(db).patterns == []

    def test_all_patterns_complete_and_canonical(self):
        db = make_random_db(3, num_sequences=8)
        for item in PTPMiner(min_sup=0.25).mine(db).patterns:
            assert item.pattern.is_complete
            assert item.pattern.is_canonical

    def test_supports_are_exact(self, clinical_db):
        result = PTPMiner(min_sup=1).mine(clinical_db)
        for item in result.patterns:
            assert item.support == item.pattern.support_in(clinical_db)

    def test_results_sorted_canonically(self):
        db = make_random_db(5)
        patterns = PTPMiner(min_sup=0.2).mine(db).patterns
        from repro.model.pattern import PatternWithSupport

        assert patterns == sorted(patterns, key=PatternWithSupport.sort_key)

    def test_mine_convenience_function(self, clinical_db):
        assert mine(clinical_db, 2).as_dict() == PTPMiner(2).mine(
            clinical_db
        ).as_dict()

    def test_deterministic_across_runs(self):
        db = make_random_db(11, num_sequences=12)
        a = PTPMiner(min_sup=0.2).mine(db)
        b = PTPMiner(min_sup=0.2).mine(db)
        assert a.patterns == b.patterns


class TestModes:
    def test_tp_mode_rejects_point_events(self, hybrid_db):
        with pytest.raises(ValueError, match="point events"):
            PTPMiner(min_sup=1, mode="tp").mine(hybrid_db)

    def test_htp_mode_finds_hybrid_patterns(self, hybrid_db):
        result = PTPMiner(min_sup=2, mode="htp").mine(hybrid_db)
        supports = result.as_dict()
        assert supports[pat("(infusion+) (alarm.) (infusion-)")] == 2
        assert supports[pat("(alarm.)")] == 2
        assert supports[pat("(infusion+) (infusion-)")] == 3

    def test_stripping_points_equals_tp_mode(self, hybrid_db):
        stripped = hybrid_db.without_point_events()
        tp = PTPMiner(min_sup=2, mode="tp").mine(stripped)
        htp = PTPMiner(min_sup=2, mode="htp").mine(hybrid_db)
        tp_patterns = {
            p for p in htp.pattern_set() if not p.is_hybrid
        }
        assert tp.pattern_set() == tp_patterns

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            PTPMiner(mode="bogus")


class TestLimits:
    def test_max_size_caps_event_count(self):
        db = make_random_db(7, num_sequences=8, max_events=5)
        result = PTPMiner(min_sup=0.2, max_size=2).mine(db)
        assert result.patterns
        assert all(item.pattern.size <= 2 for item in result.patterns)

    def test_max_size_matches_unrestricted_subset(self):
        db = make_random_db(7, num_sequences=8, max_events=5)
        full = PTPMiner(min_sup=0.2).mine(db).as_dict()
        capped = PTPMiner(min_sup=0.2, max_size=2).mine(db).as_dict()
        expected = {p: s for p, s in full.items() if p.size <= 2}
        assert capped == expected

    def test_max_tokens_caps_token_count(self):
        db = make_random_db(9, num_sequences=8)
        result = PTPMiner(min_sup=0.2, max_tokens=3).mine(db)
        assert all(item.pattern.num_tokens <= 3 for item in result.patterns)

    def test_invalid_limits_rejected(self):
        with pytest.raises(ValueError):
            PTPMiner(max_tokens=0)
        with pytest.raises(ValueError):
            PTPMiner(max_size=0)


class TestWeightedMining:
    def test_weights_scale_support(self, clinical_db):
        weights = [0.5, 0.5, 1.0, 1.0]
        result = PTPMiner(min_sup=1).mine_weighted(clinical_db, weights, 1.0)
        supports = result.as_dict()
        assert supports[pat("(fever+) (fever-)")] == 2.0  # 0.5+0.5+1
        assert supports[pat("(rash+) (rash-)")] == 3.0

    def test_zero_weight_sequences_ignored(self, clinical_db):
        weights = [1.0, 0.0, 0.0, 0.0]
        result = PTPMiner(min_sup=1).mine_weighted(clinical_db, weights, 0.5)
        assert result.as_dict()[pat("(fever+) (fever-)")] == 1

    def test_weight_length_mismatch(self, clinical_db):
        with pytest.raises(ValueError, match="weights"):
            PTPMiner(1).mine_weighted(clinical_db, [1.0], 1.0)

    def test_negative_weight_rejected(self, clinical_db):
        with pytest.raises(ValueError, match="non-negative"):
            PTPMiner(1).mine_weighted(clinical_db, [1, 1, 1, -1], 1.0)

    def test_non_positive_threshold_rejected(self, clinical_db):
        with pytest.raises(ValueError, match="positive"):
            PTPMiner(1).mine_weighted(clinical_db, [1, 1, 1, 1], 0)

    def test_unit_weights_match_plain_mine(self, clinical_db):
        plain = PTPMiner(min_sup=2).mine(clinical_db)
        weighted = PTPMiner(min_sup=2).mine_weighted(
            clinical_db, [1.0] * 4, 2.0
        )
        assert plain.as_dict() == weighted.as_dict()


class TestCountersAndResult:
    def test_counters_populated(self, clinical_db):
        result = PTPMiner(min_sup=2).mine(clinical_db)
        assert result.counters.nodes_expanded > 0
        assert result.counters.patterns_emitted == len(result.patterns)
        assert result.counters.candidates_frequent >= len(result.patterns)

    def test_pair_pruning_counter_fires(self):
        # 'B after A' holds in only 2 of 4 sequences (< threshold 3), so
        # the S-extension of the A-prefix by B+ is discovered but killed
        # by the pair table before any projection work.
        db = ESequenceDatabase.from_event_lists(
            [[(0, 1, "A"), (2, 3, "B")]] * 2
            + [[(2, 3, "A"), (0, 1, "B")]] * 2
        )
        pruned = PTPMiner(min_sup=3).mine(db)
        assert pruned.counters.pruned_pair > 0

    def test_point_pruning_counter_fires(self):
        rows = [[(0, 1, "A"), (2, 3, f"rare{i}")] for i in range(6)]
        db = ESequenceDatabase.from_event_lists(rows)
        result = PTPMiner(min_sup=3).mine(db)
        assert result.counters.pruned_point_labels == 6

    def test_result_metadata(self, clinical_db):
        result = PTPMiner(min_sup=0.5, mode="tp").mine(clinical_db)
        assert result.miner == "P-TPMiner"
        assert result.db_size == 4
        assert result.threshold == 2
        assert result.elapsed >= 0
        assert result.params["pruning"] == "point+pair+postfix"

    def test_top_k(self, clinical_db):
        result = PTPMiner(min_sup=0.25).mine(clinical_db)
        assert len(result.top(2)) == 2
        assert result.top(2)[0].support >= result.top(2)[1].support


class TestPruningEquivalence:
    """All pruning configurations yield identical results (prunings are
    safe); the full config does not exceed the work of the empty config."""

    @pytest.mark.parametrize(
        "config",
        [
            PruningConfig.none(),
            PruningConfig(point=True, pair=False, postfix=False),
            PruningConfig(point=False, pair=True, postfix=False),
            PruningConfig(point=False, pair=False, postfix=True),
            PruningConfig.all(),
        ],
        ids=lambda c: c.describe(),
    )
    def test_all_configs_agree(self, config):
        db = make_random_db(21, num_sequences=14, max_events=5)
        reference = PTPMiner(min_sup=0.2).mine(db).as_dict()
        assert PTPMiner(min_sup=0.2, pruning=config).mine(db).as_dict() == (
            reference
        )

    def test_pruning_reduces_candidates(self):
        db = make_random_db(33, num_sequences=30, labels="ABCDEF",
                            max_events=6)
        full = PTPMiner(min_sup=0.3).mine(db)
        bare = PTPMiner(
            min_sup=0.3, pruning=PruningConfig.none()
        ).mine(db)
        assert (
            full.counters.candidates_considered
            <= bare.counters.candidates_considered
        )
