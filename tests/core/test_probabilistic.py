"""Tests for expected-support mining over uncertain databases."""

import pytest

from repro.core.probabilistic import ProbabilisticTPMiner
from repro.core.ptpminer import PTPMiner
from repro.model.database import ESequenceDatabase
from repro.model.pattern import TemporalPattern
from repro.model.uncertain import UncertainESequenceDatabase

from tests.conftest import make_random_db


def pat(text):
    return TemporalPattern.parse(text)


def uncertain_clinical():
    db = ESequenceDatabase.from_event_lists(
        [
            [(0, 10, "fever"), (2, 6, "rash")],
            [(0, 8, "fever"), (3, 5, "rash")],
            [(0, 6, "fever")],
            [(0, 4, "rash")],
        ]
    )
    return UncertainESequenceDatabase.from_database(
        db, [0.9, 0.6, 0.5, 1.0]
    )


class TestExpectedSupport:
    def test_expected_supports_are_weight_sums(self):
        result = ProbabilisticTPMiner(min_esup=1.2).mine(
            uncertain_clinical()
        )
        supports = result.as_dict()
        assert supports[pat("(fever+) (fever-)")] == pytest.approx(2.0)
        assert supports[pat("(rash+) (rash-)")] == pytest.approx(2.5)
        assert supports[
            pat("(fever+) (rash+) (rash-) (fever-)")
        ] == pytest.approx(1.5)

    def test_threshold_filters_by_expectation(self):
        result = ProbabilisticTPMiner(min_esup=2.2).mine(
            uncertain_clinical()
        )
        assert result.pattern_set() == {pat("(rash+) (rash-)")}

    def test_fractional_threshold_is_relative(self):
        udb = uncertain_clinical()
        rel = ProbabilisticTPMiner(min_esup=2.2 / udb.total_probability)
        abs_ = ProbabilisticTPMiner(min_esup=2.2)
        assert rel.mine(udb).as_dict() == abs_.mine(udb).as_dict()

    def test_certain_database_matches_deterministic(self):
        db = make_random_db(17, num_sequences=10)
        udb = UncertainESequenceDatabase.certain(db)
        deterministic = PTPMiner(min_sup=2).mine(db).as_dict()
        probabilistic = ProbabilisticTPMiner(min_esup=2).mine(udb).as_dict()
        assert probabilistic == deterministic

    def test_oracle_expected_supports(self):
        """Expected support equals the containment-weighted sum (oracle)."""
        udb = uncertain_clinical()
        result = ProbabilisticTPMiner(min_esup=0.5).mine(udb)
        for item in result.patterns:
            expected = sum(
                p
                for seq, p in zip(udb.db, udb.probabilities)
                if item.pattern.contained_in(seq)
            )
            assert item.support == pytest.approx(expected)

    def test_miner_tag_and_params(self):
        result = ProbabilisticTPMiner(min_esup=1.0).mine(
            uncertain_clinical()
        )
        assert result.miner == "P-TPMiner(probabilistic)"
        assert result.params["min_esup"] == 1.0


class TestUncertainDatabase:
    def test_probability_validation(self):
        db = make_random_db(0, num_sequences=3)
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            UncertainESequenceDatabase.from_database(db, [0.5, 1.5, 0.5])

    def test_length_mismatch(self):
        db = make_random_db(0, num_sequences=3)
        with pytest.raises(ValueError, match="probabilities"):
            UncertainESequenceDatabase.from_database(db, [0.5])

    def test_total_probability(self):
        assert uncertain_clinical().total_probability == pytest.approx(3.0)

    def test_threshold_conversion(self):
        udb = uncertain_clinical()
        assert udb.expected_support_threshold(0.5) == pytest.approx(1.5)
        assert udb.expected_support_threshold(2.5) == 2.5
        with pytest.raises(ValueError, match="positive"):
            udb.expected_support_threshold(0)

    def test_repr_and_len(self):
        udb = uncertain_clinical()
        assert len(udb) == 4
        assert "4 sequences" in repr(udb)


class TestProbabilisticPruningEquivalence:
    def test_pruning_configs_agree_under_weights(self):
        from repro.core.pruning import PruningConfig

        udb = uncertain_clinical()
        reference = ProbabilisticTPMiner(min_esup=1.1).mine(udb).as_dict()
        for config in (
            PruningConfig.none(),
            PruningConfig(point=True, pair=False, postfix=False),
            PruningConfig(point=False, pair=True, postfix=False),
            PruningConfig(point=False, pair=False, postfix=True),
        ):
            got = ProbabilisticTPMiner(
                min_esup=1.1, pruning=config
            ).mine(udb).as_dict()
            assert got == reference, config.describe()

    def test_randomized_weighted_agreement(self):
        import random

        from repro.core.ptpminer import PTPMiner
        from repro.model.pattern import TemporalPattern

        for seed in range(5):
            db = make_random_db(seed, num_sequences=10)
            rng = random.Random(seed)
            weights = [rng.random() for _ in range(len(db))]
            result = PTPMiner(1).mine_weighted(db, weights, 0.8)
            for item in result.patterns:
                expected = sum(
                    w
                    for seq, w in zip(db, weights)
                    if item.pattern.contained_in(seq)
                )
                assert abs(item.support - expected) < 1e-9
