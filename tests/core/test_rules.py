"""Tests for temporal association rule generation."""

import pytest

from repro.core.ptpminer import PTPMiner
from repro.core.rules import TemporalRule, generate_rules
from repro.model.pattern import TemporalPattern

from tests.conftest import make_random_db


def pat(text):
    return TemporalPattern.parse(text)


class TestTemporalRule:
    def test_confidence(self):
        rule = TemporalRule(pat("(A+) (A-)"), pat("(A+) (B+) (A-) (B-)"),
                            10, 4, 20)
        assert rule.confidence == pytest.approx(0.4)

    def test_lift(self):
        rule = TemporalRule(pat("(A+) (A-)"), pat("(A+) (B+) (A-) (B-)"),
                            10, 4, 20)
        # base rate of consequent = 4/20 = 0.2; lift = 0.4 / 0.2 = 2.
        assert rule.lift == pytest.approx(2.0)

    def test_zero_guards(self):
        rule = TemporalRule(pat("(A+) (A-)"), pat("(A+) (B+) (A-) (B-)"),
                            0, 0, 0)
        assert rule.confidence == 0.0
        assert rule.lift == 0.0

    def test_str(self):
        rule = TemporalRule(pat("(A+) (A-)"), pat("(A+) (B+) (A-) (B-)"),
                            10, 5, 20)
        text = str(rule)
        assert "=>" in text and "conf 0.50" in text


class TestGenerateRules:
    def test_clinical_rule(self, clinical_db):
        result = PTPMiner(min_sup=2).mine(clinical_db)
        rules = generate_rules(result, min_confidence=0.5)
        texts = {
            (str(r.antecedent), str(r.consequent)): r for r in rules
        }
        key = ("(fever+) (fever-)",
               "(fever+) (rash+) (rash-) (fever-)")
        assert key in texts
        assert texts[key].confidence == pytest.approx(2 / 3)

    def test_min_confidence_filters(self, clinical_db):
        result = PTPMiner(min_sup=2).mine(clinical_db)
        strict = generate_rules(result, min_confidence=0.9)
        loose = generate_rules(result, min_confidence=0.1)
        assert len(strict) <= len(loose)
        assert all(r.confidence >= 0.9 for r in strict)

    def test_invalid_confidence(self, clinical_db):
        result = PTPMiner(min_sup=2).mine(clinical_db)
        with pytest.raises(ValueError, match="min_confidence"):
            generate_rules(result, min_confidence=0)
        with pytest.raises(ValueError, match="min_confidence"):
            generate_rules(result, min_confidence=1.5)

    def test_consequent_contains_antecedent(self):
        db = make_random_db(4, num_sequences=12)
        result = PTPMiner(min_sup=0.2).mine(db)
        for rule in generate_rules(result, min_confidence=0.3):
            assert rule.antecedent.contained_in(rule.consequent)
            assert rule.consequent.size == rule.antecedent.size + 1

    def test_confidence_is_support_ratio(self):
        db = make_random_db(5, num_sequences=12)
        result = PTPMiner(min_sup=0.2).mine(db)
        supports = result.as_dict()
        for rule in generate_rules(result, min_confidence=0.2):
            assert rule.confidence == pytest.approx(
                supports[rule.consequent] / supports[rule.antecedent]
            )

    def test_sorted_by_confidence(self):
        db = make_random_db(6, num_sequences=12)
        rules = generate_rules(
            PTPMiner(min_sup=0.2).mine(db), min_confidence=0.2
        )
        confidences = [r.confidence for r in rules]
        assert confidences == sorted(confidences, reverse=True)

    def test_max_rules(self, clinical_db):
        result = PTPMiner(min_sup=2).mine(clinical_db)
        rules = generate_rules(result, min_confidence=0.1, max_rules=1)
        assert len(rules) == 1

    def test_deterministic(self):
        db = make_random_db(7, num_sequences=12)
        result = PTPMiner(min_sup=0.2).mine(db)
        assert generate_rules(result) == generate_rules(result)
