"""Tests for the closed / maximal pattern post-filters."""

from repro.core.closed import filter_closed, filter_maximal
from repro.core.ptpminer import PTPMiner
from repro.model.database import ESequenceDatabase
from repro.model.pattern import TemporalPattern

from tests.conftest import make_random_db


def pat(text):
    return TemporalPattern.parse(text)


def identical_db():
    """Every sequence is 'A overlaps B': only the 4-token pattern is closed."""
    return ESequenceDatabase.from_event_lists(
        [[(0, 4, "A"), (2, 6, "B")]] * 3
    )


class TestClosed:
    def test_subsumed_equal_support_removed(self):
        result = PTPMiner(min_sup=3).mine(identical_db())
        closed = filter_closed(result)
        assert closed.pattern_set() == {pat("(A+) (B+) (A-) (B-)")}

    def test_distinct_support_kept(self, clinical_db):
        result = PTPMiner(min_sup=2).mine(clinical_db)
        closed = filter_closed(result)
        # rash (support 4) and fever (support 3) both closed; the nested
        # pattern (support 2) closed as the largest.
        assert pat("(rash+) (rash-)") in closed.pattern_set()
        assert pat("(fever+) (fever-)") in closed.pattern_set()
        assert pat("(fever+) (rash+) (rash-) (fever-)") in closed.pattern_set()

    def test_supports_preserved(self, clinical_db):
        result = PTPMiner(min_sup=2).mine(clinical_db)
        closed = filter_closed(result)
        full = result.as_dict()
        for item in closed.patterns:
            assert full[item.pattern] == item.support

    def test_miner_tag(self, clinical_db):
        closed = filter_closed(PTPMiner(min_sup=2).mine(clinical_db))
        assert closed.miner.endswith("+closed")

    def test_closed_set_determines_all_supports(self):
        """Every frequent pattern's support equals the max support of a
        closed super-pattern — the defining property of closed sets."""
        db = make_random_db(5, num_sequences=10)
        result = PTPMiner(min_sup=0.2).mine(db)
        closed = filter_closed(result)
        for item in result.patterns:
            covering = [
                c.support
                for c in closed.patterns
                if item.pattern.contained_in(c.pattern)
            ]
            assert covering
            assert max(covering) == item.support


class TestMaximal:
    def test_only_maximal_survive(self):
        result = PTPMiner(min_sup=3).mine(identical_db())
        maximal = filter_maximal(result)
        assert maximal.pattern_set() == {pat("(A+) (B+) (A-) (B-)")}

    def test_maximal_subset_of_closed(self):
        db = make_random_db(8, num_sequences=10)
        result = PTPMiner(min_sup=0.2).mine(db)
        closed = filter_closed(result)
        maximal = filter_maximal(result)
        assert maximal.pattern_set() <= closed.pattern_set()

    def test_every_pattern_below_some_maximal(self):
        db = make_random_db(9, num_sequences=10)
        result = PTPMiner(min_sup=0.3).mine(db)
        maximal = filter_maximal(result)
        for item in result.patterns:
            assert any(
                item.pattern.contained_in(m.pattern)
                for m in maximal.patterns
            )

    def test_miner_tag(self, clinical_db):
        maximal = filter_maximal(PTPMiner(min_sup=2).mine(clinical_db))
        assert maximal.miner.endswith("+maximal")
