"""Regression tests for subtle cases found while building the miners.

Each test pins a behaviour that once diverged between components (or
plausibly could). Keep these — they encode the sharp edges of the
pattern semantics.
"""

from repro.baselines.bruteforce import BruteForceMiner
from repro.core.ptpminer import PTPMiner
from repro.model.database import ESequenceDatabase
from repro.model.pattern import TemporalPattern


def pat(text):
    return TemporalPattern.parse(text)


class TestPointIntervalNumbering:
    """A same-label point and interval sharing a pointset: the point must
    take the lower occurrence index (kind order point < start), or the
    miner's generation numbering diverges from canonical form."""

    def test_canonical_agrees_with_miner(self):
        db = ESequenceDatabase.from_event_lists(
            [[(0, 0, "B"), (0, 3, "B")]] * 2
        )
        result = PTPMiner(min_sup=2, mode="htp").mine(db)
        expected = BruteForceMiner(min_sup=2, mode="htp").mine(db)
        assert result.as_dict() == expected.as_dict()
        assert pat("(B. B#2+) (B#2-)") in result.pattern_set()

    def test_point_numbered_before_cooccurring_start(self):
        pattern = TemporalPattern.from_arrangement(
            [
                __import__("repro").IntervalEvent(0, 0, "B"),
                __import__("repro").IntervalEvent(0, 3, "B"),
            ]
        )
        assert str(pattern) == "(B. B#2+) (B#2-)"


class TestDuplicateFinishCanonicalRule:
    """Two same-label intervals opening in one pointset: only canonical
    finish orders may be generated, or isomorphic twins get counted
    twice."""

    def test_same_start_different_finish(self):
        db = ESequenceDatabase.from_event_lists(
            [[(0, 2, "A"), (0, 5, "A")]] * 3
        )
        result = PTPMiner(min_sup=3).mine(db)
        patterns = {str(p) for p in result.pattern_set()}
        assert "(A+ A#2+) (A-) (A#2-)" in patterns
        # The occurrence-swapped twin must NOT appear.
        assert "(A+ A#2+) (A#2-) (A-)" not in patterns

    def test_counts_match_oracle_exactly(self):
        db = ESequenceDatabase.from_event_lists(
            [
                [(0, 2, "A"), (0, 5, "A"), (1, 3, "A")],
                [(0, 2, "A"), (0, 5, "A")],
                [(0, 4, "A"), (0, 4, "A")],
            ]
        )
        assert (
            PTPMiner(min_sup=2).mine(db).as_dict()
            == BruteForceMiner(min_sup=2).mine(db).as_dict()
        )


class TestEarliestMatchIncompleteness:
    """The classical PrefixSpan 'keep only the earliest match' shortcut is
    UNSOUND for interval patterns: binding a start to a different
    duplicate occurrence moves where the finish can match. The state
    machinery must keep the later binding alive."""

    def test_later_binding_required(self):
        # A occurs twice: [0,2] and [3,9]. Pattern 'B during A' only
        # embeds through the SECOND A; an earliest-match-only projection
        # would bind A+ to the first occurrence and miss it.
        db = ESequenceDatabase.from_event_lists(
            [[(0, 2, "A"), (3, 9, "A"), (4, 5, "B")]] * 2
        )
        result = PTPMiner(min_sup=2).mine(db)
        assert pat("(A+) (B+) (B-) (A-)") in result.pattern_set()

    def test_injectivity_blocks_reuse(self):
        # Pattern needs two distinct A's arranged A-before-A; a sequence
        # with one A must not support it by reusing the occurrence.
        db = ESequenceDatabase.from_event_lists(
            [[(0, 2, "A"), (4, 6, "A")], [(0, 2, "A")]]
        )
        result = PTPMiner(min_sup=1).mine_weighted(db, [1.0, 1.0], 1.0)
        assert result.as_dict()[pat("(A+) (A-) (A#2+) (A#2-)")] == 1


class TestMeetsSharedPointset:
    """'A meets B' puts A- and B+ in one pointset; the I-extension path
    must produce it and the arrangement must survive interpretation."""

    def test_meets_pattern_mined_and_described(self):
        db = ESequenceDatabase.from_event_lists(
            [[(0, 3, "A"), (3, 7, "B")]] * 2
        )
        result = PTPMiner(min_sup=2).mine(db)
        meets = pat("(A+) (A- B+) (B-)")
        assert meets in result.pattern_set()
        assert meets.allen_description() == ["A meets B"]

    def test_equal_intervals(self):
        db = ESequenceDatabase.from_event_lists(
            [[(1, 5, "A"), (1, 5, "B")]] * 2
        )
        result = PTPMiner(min_sup=2).mine(db)
        equal = pat("(A+ B+) (A- B-)")
        assert equal in result.pattern_set()
        assert equal.allen_description() == ["A equal B"]


class TestPointPruningKeepsSidAlignment:
    """Point pruning must not renumber sids, or weighted mining reads the
    wrong weights."""

    def test_weights_follow_sequences(self):
        db = ESequenceDatabase.from_event_lists(
            [
                [(0, 1, "rare1")],  # weight 5, label infrequent
                [(0, 1, "A")],
                [(0, 1, "A")],
            ]
        )
        result = PTPMiner(min_sup=1).mine_weighted(
            db, [5.0, 1.0, 1.0], 2.0
        )
        # rare1 is frequent by WEIGHT (5 >= 2) even though it occurs in
        # one sequence; A's weight is 1+1. Both require the weights to be
        # read through the original sids.
        assert result.as_dict() == {
            pat("(rare1+) (rare1-)"): 5,
            pat("(A+) (A-)"): 2,
        }
        flipped = PTPMiner(min_sup=1).mine_weighted(
            db, [1.0, 5.0, 1.0], 2.0
        )
        assert flipped.as_dict() == {pat("(A+) (A-)"): 6}


class TestEmptyAndDegenerateInputs:
    def test_sequence_emptied_by_point_pruning(self):
        db = ESequenceDatabase.from_event_lists(
            [[(0, 1, "x")], [(0, 1, "y")], [(0, 1, "z")]]
        )
        result = PTPMiner(min_sup=2).mine(db)
        assert result.patterns == []

    def test_only_point_events_htp(self):
        db = ESequenceDatabase.from_event_lists(
            [[(1, 1, "t")], [(2, 2, "t")]]
        )
        result = PTPMiner(min_sup=2, mode="htp").mine(db)
        assert result.as_dict() == {pat("(t.)"): 2}

    def test_two_points_same_label_same_instant(self):
        db = ESequenceDatabase.from_event_lists(
            [[(1, 1, "t"), (1, 1, "t")]] * 2
        )
        result = PTPMiner(min_sup=2, mode="htp").mine(db)
        expected = BruteForceMiner(min_sup=2, mode="htp").mine(db)
        assert result.as_dict() == expected.as_dict()
        assert pat("(t. t#2.)") in result.pattern_set()
