"""Tests for the extension features: max_span time constraint and top-k."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.bruteforce import BruteForceMiner
from repro.core.ptpminer import PTPMiner
from repro.model.database import ESequenceDatabase
from repro.model.pattern import TemporalPattern

from tests.conftest import make_random_db


def pat(text):
    return TemporalPattern.parse(text)


class TestMaxSpan:
    def test_validation(self):
        with pytest.raises(ValueError, match="max_span"):
            PTPMiner(max_span=-1)

    def test_window_excludes_distant_arrangements(self):
        # 'A before B' with a 10-unit gap: visible without a constraint,
        # invisible through a 5-unit window.
        db = ESequenceDatabase.from_event_lists(
            [[(0, 2, "A"), (12, 14, "B")]] * 3
        )
        free = PTPMiner(min_sup=3).mine(db).pattern_set()
        windowed = PTPMiner(min_sup=3, max_span=5).mine(db).pattern_set()
        before = pat("(A+) (A-) (B+) (B-)")
        assert before in free
        assert before not in windowed
        assert pat("(A+) (A-)") in windowed
        assert pat("(B+) (B-)") in windowed

    def test_long_interval_itself_excluded(self):
        db = ESequenceDatabase.from_event_lists([[(0, 20, "A")]] * 2)
        result = PTPMiner(min_sup=2, max_span=5).mine(db)
        assert result.patterns == []

    def test_window_is_per_embedding_not_per_sequence(self):
        # The same arrangement occurs twice: once inside the window and
        # once straddling it — the tight embedding must still count.
        db = ESequenceDatabase.from_event_lists(
            [[(0, 2, "A"), (50, 52, "B"), (53, 55, "A"), (56, 58, "B")]] * 2
        )
        windowed = PTPMiner(min_sup=2, max_span=10).mine(db).pattern_set()
        assert pat("(A+) (A-) (B+) (B-)") in windowed

    def test_boundary_is_inclusive(self):
        db = ESequenceDatabase.from_event_lists(
            [[(0, 2, "A"), (3, 5, "B")]] * 2
        )
        windowed = PTPMiner(min_sup=2, max_span=5).mine(db).pattern_set()
        assert pat("(A+) (A-) (B+) (B-)") in windowed

    def test_no_constraint_equals_infinite_window(self):
        db = make_random_db(3, num_sequences=10)
        free = PTPMiner(0.2).mine(db).as_dict()
        wide = PTPMiner(0.2, max_span=10_000).mine(db).as_dict()
        assert free == wide

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("span", [2, 5])
    def test_agreement_with_oracle(self, seed, span):
        db = make_random_db(seed, num_sequences=10, labels="AB",
                            max_events=5, time_max=8)
        expected = BruteForceMiner(0.2, max_span=span).mine(db).as_dict()
        got = PTPMiner(0.2, max_span=span).mine(db).as_dict()
        assert got == expected

    def test_agreement_with_oracle_htp(self):
        for seed in range(4):
            db = make_random_db(seed, num_sequences=10, labels="AB",
                                max_events=4, point_fraction=0.3)
            expected = BruteForceMiner(
                0.2, mode="htp", max_span=3
            ).mine(db).as_dict()
            got = PTPMiner(0.2, mode="htp", max_span=3).mine(db).as_dict()
            assert got == expected

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000), span=st.integers(1, 8))
    def test_constrained_support_is_bounded(self, seed, span):
        """Constrained supports never exceed unconstrained supports."""
        db = make_random_db(seed, num_sequences=8)
        free = PTPMiner(0.2).mine(db).as_dict()
        constrained = PTPMiner(0.2, max_span=span).mine(db).as_dict()
        for pattern, support in constrained.items():
            assert support <= free[pattern]


class TestTopK:
    def test_validation(self, clinical_db):
        with pytest.raises(ValueError, match="k must"):
            PTPMiner().mine_top_k(clinical_db, 0)
        with pytest.raises(ValueError, match="min_size"):
            PTPMiner().mine_top_k(clinical_db, 3, min_size=0)

    def test_top_one(self, clinical_db):
        result = PTPMiner().mine_top_k(clinical_db, 1)
        assert len(result.patterns) == 1
        assert result.patterns[0].pattern == pat("(rash+) (rash-)")
        assert result.patterns[0].support == 4

    def test_matches_head_of_exhaustive_mine(self):
        for seed in range(6):
            db = make_random_db(seed, num_sequences=12)
            full = PTPMiner().mine_weighted(
                db, [1.0] * len(db), 1.0
            ).patterns
            for k in (1, 3, 8):
                topk = PTPMiner().mine_top_k(db, k).patterns
                assert topk == full[: min(k, len(full))], (seed, k)

    def test_fewer_patterns_than_k(self):
        db = ESequenceDatabase.from_event_lists([[(0, 1, "A")]])
        result = PTPMiner().mine_top_k(db, 10)
        assert len(result.patterns) == 1

    def test_min_size_filters_small_patterns(self, clinical_db):
        result = PTPMiner().mine_top_k(clinical_db, 2, min_size=2)
        assert len(result.patterns) == 2
        assert all(item.pattern.size >= 2 for item in result.patterns)
        assert result.patterns[0].pattern == pat(
            "(fever+) (rash+) (rash-) (fever-)"
        )

    def test_dynamic_threshold_prunes(self):
        """Top-k with small k must do less work than exhaustive mining."""
        db = make_random_db(20, num_sequences=30, labels="ABCDE",
                            max_events=6)
        full = PTPMiner().mine_weighted(db, [1.0] * len(db), 1.0)
        topk = PTPMiner().mine_top_k(db, 3)
        assert (
            topk.counters.candidates_frequent
            < full.counters.candidates_frequent
        )

    def test_min_sup_floor_respected(self, clinical_db):
        result = PTPMiner().mine_top_k(clinical_db, 50, min_sup=3)
        assert all(item.support >= 3 for item in result.patterns)

    def test_miner_tag(self, clinical_db):
        result = PTPMiner().mine_top_k(clinical_db, 2)
        assert result.miner == "P-TPMiner(top-k)"
        assert result.params["k"] == 2
