"""Tests for the runtime contract layer (``repro.contracts``).

Covers the flag plumbing (env/enable/disable/scope), the ``check`` and
``@contract`` primitives, the projection-state contract, and the
pruning-soundness oracle — including that a deliberately sabotaged
search is caught when contracts are on and invisible when they are off
(the zero-cost-disabled guarantee).
"""

from __future__ import annotations

import pytest

from repro import contracts
from repro.contracts import ContractViolation, check, contract
from repro.core.projection import State, check_state
from repro.core.ptpminer import PTPMiner
from repro.temporal.endpoint import EncodedSequence

# ---------------------------------------------------------------------------
# flag plumbing
# ---------------------------------------------------------------------------

def test_suite_runs_with_contracts_enabled():
    """The session fixture in conftest.py turns the layer on suite-wide."""
    assert contracts.is_enabled()


def test_enable_disable_round_trip():
    assert contracts.checking
    contracts.disable()
    try:
        assert not contracts.is_enabled()
    finally:
        contracts.enable()
    assert contracts.is_enabled()


def test_enabled_scope_restores_prior_value():
    with contracts.enabled_scope(False):
        assert not contracts.checking
        with contracts.enabled_scope(True):
            assert contracts.checking
        assert not contracts.checking
    assert contracts.checking


def test_violation_is_an_assertion_error():
    assert issubclass(ContractViolation, AssertionError)


# ---------------------------------------------------------------------------
# check()
# ---------------------------------------------------------------------------

def test_check_raises_when_enabled():
    with pytest.raises(ContractViolation, match="boom"):
        check(False, "boom")
    check(True, "fine")  # no raise


def test_check_is_noop_when_disabled():
    called = []
    with contracts.enabled_scope(False):
        check(False, "never raised", details=lambda: called.append("x") or "")
    assert called == []


def test_check_details_lazy_and_appended():
    called = []

    def details() -> str:
        called.append("x")
        return "extra context"

    check(True, "fine", details=details)
    assert called == []  # details only computed on failure
    with pytest.raises(ContractViolation, match="extra context"):
        check(False, "boom", details=details)


# ---------------------------------------------------------------------------
# @contract
# ---------------------------------------------------------------------------

def test_contract_pre_and_post():
    @contract(pre=lambda x: x >= 0, post=lambda result, x: result >= x)
    def increment(x: int) -> int:
        return x + 1 if x < 10 else x - 1

    assert increment(3) == 4
    with pytest.raises(ContractViolation, match="precondition"):
        increment(-1)
    with pytest.raises(ContractViolation, match="postcondition"):
        increment(10)


def test_contract_forwards_when_disabled():
    @contract(pre=lambda x: False)  # would always fail
    def f(x: int) -> int:
        return x * 2

    with contracts.enabled_scope(False):
        assert f(21) == 42


# ---------------------------------------------------------------------------
# projection-state contract
# ---------------------------------------------------------------------------

def _toy_sequence() -> EncodedSequence:
    """Two pointsets; one interval occurrence (label_id 1, occ 0)."""
    return EncodedSequence(
        sid=0,
        pointsets=[[(4, 0)], [(5, 0)]],
        start_pos={(1, 0): 0},
        finish_pos={(1, 0): 1},
        times=(0.0, 1.0),
    )


def test_check_state_accepts_consistent_state():
    seq = _toy_sequence()
    check_state(State(-1, frozenset(), frozenset()), seq)
    check_state(
        State(0, frozenset({(1, 0, 0)}), frozenset({(1, 0)})), seq
    )


@pytest.mark.parametrize(
    "state, match",
    [
        (State(5, frozenset(), frozenset()), "frontier out of range"),
        (State(-2, frozenset(), frozenset()), "frontier out of range"),
        (
            State(0, frozenset({(1, 0, 0)}), frozenset()),
            "not marked used",
        ),
        (
            State(
                0,
                frozenset({(1, 0, 0), (1, 1, 0)}),
                frozenset({(1, 0)}),
            ),
            "sequence occurrence bound twice",
        ),
        (
            State(0, frozenset(), frozenset({(2, 0)})),
            "missing from the sequence",
        ),
    ],
)
def test_check_state_rejects_corrupted_states(state, match):
    with pytest.raises(ContractViolation, match=match):
        check_state(state, _toy_sequence())


# ---------------------------------------------------------------------------
# pruning-soundness oracle
# ---------------------------------------------------------------------------

def _sabotage_search(monkeypatch):
    """Patch the miner to silently drop its last found pattern."""
    original = PTPMiner._search

    def sabotaged(self, *args, **kwargs):
        patterns = original(self, *args, **kwargs)
        assert patterns, "sabotage needs at least one pattern to drop"
        return patterns[:-1]

    monkeypatch.setattr(PTPMiner, "_search", sabotaged)


def test_oracle_catches_dropped_pattern(monkeypatch, two_interval_db):
    _sabotage_search(monkeypatch)
    with pytest.raises(ContractViolation, match="oracle"):
        PTPMiner(0.5).mine(two_interval_db)


def test_sabotage_invisible_when_disabled(monkeypatch, two_interval_db):
    """Disabled contracts add no checking — the bug passes silently."""
    _sabotage_search(monkeypatch)
    with contracts.enabled_scope(False):
        result = PTPMiner(0.5).mine(two_interval_db)
    assert result.patterns  # mined, one pattern short, no error


def test_clean_mining_passes_oracle(two_interval_db):
    result = PTPMiner(0.5).mine(two_interval_db)
    assert result.patterns
