"""Public API surface tests: exports, docstrings, the README quickstart."""

import doctest
import importlib

import pytest

import repro


class TestSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    @pytest.mark.parametrize(
        "module_name",
        [
            "repro.model.event",
            "repro.model.sequence",
            "repro.model.database",
            "repro.model.pattern",
            "repro.model.uncertain",
            "repro.temporal.allen",
            "repro.temporal.endpoint",
            "repro.temporal.relation_matrix",
            "repro.core.config",
            "repro.core.ptpminer",
            "repro.core.projection",
            "repro.core.counting",
            "repro.core.pruning",
            "repro.core.probabilistic",
            "repro.core.closed",
            "repro.baselines.tprefixspan",
            "repro.baselines.ieminer",
            "repro.baselines.hdfs",
            "repro.baselines.bruteforce",
            "repro.datagen.synthetic",
            "repro.datagen.asl",
            "repro.datagen.library",
            "repro.datagen.stock",
            "repro.io.text_format",
            "repro.io.spmf",
            "repro.io.jsonl",
            "repro.io.csv_format",
            "repro.harness.metrics",
            "repro.harness.tables",
            "repro.harness.figures",
            "repro.harness.runner",
            "repro.engine",
            "repro.miners",
            "repro.cli",
        ],
    )
    def test_every_module_has_docstring(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__ and len(module.__doc__.strip()) > 40

    def test_public_classes_have_docstrings(self):
        for name in repro.__all__:
            obj = getattr(repro, name)
            if isinstance(obj, type) or callable(obj):
                assert obj.__doc__, name


class TestDoctests:
    @pytest.mark.parametrize(
        "module_name",
        [
            "repro",
            "repro.model.event",
            "repro.model.sequence",
            "repro.model.database",
            "repro.core.ptpminer",
            "repro.core.probabilistic",
            "repro.model.uncertain",
        ],
    )
    def test_module_doctests(self, module_name):
        module = importlib.import_module(module_name)
        failures, _tests = doctest.testmod(
            module, verbose=False
        ).failed, doctest.testmod(module, verbose=False).attempted
        assert failures == 0


class TestEndToEnd:
    def test_quickstart_flow(self):
        """The README quickstart, executed."""
        db = repro.ESequenceDatabase.from_event_lists(
            [
                [(0, 4, "fever"), (2, 6, "rash")],
                [(0, 3, "fever"), (1, 5, "rash")],
                [(0, 3, "rash")],
            ]
        )
        result = repro.mine(db, min_sup=2)
        overlap = repro.TemporalPattern.parse(
            "(fever+) (rash+) (fever-) (rash-)"
        )
        assert result.as_dict()[overlap] == 2
        assert overlap.allen_description() == ["fever overlaps rash"]

    def test_generate_mine_filter_save_load(self, tmp_path):
        from repro.datagen import standard_dataset
        from repro.io import read_patterns, write_patterns

        db = standard_dataset("tiny")
        result = repro.PTPMiner(min_sup=0.3).mine(db)
        closed = repro.filter_closed(result)
        path = tmp_path / "patterns.txt"
        write_patterns(closed.patterns, path)
        assert read_patterns(path) == closed.patterns

    def test_probabilistic_end_to_end(self):
        from repro.datagen import standard_dataset

        db = standard_dataset("tiny")
        udb = repro.UncertainESequenceDatabase.from_database(
            db, [0.5 + (i % 2) * 0.5 for i in range(len(db))]
        )
        result = repro.ProbabilisticTPMiner(min_esup=0.25).mine(udb)
        assert result.patterns
        deterministic = repro.PTPMiner(min_sup=0.25).mine(db)
        # Expected supports are bounded by deterministic supports.
        det = deterministic.as_dict()
        for item in result.patterns:
            if item.pattern in det:
                assert item.support <= det[item.pattern] + 1e-9
