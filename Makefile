PYTHON ?= python
export PYTHONPATH := src

.PHONY: help lint typecheck repro-lint lint-deep test test-contracts check \
	bench perf perf-check profile

help:
	@echo "Targets:"
	@echo "  lint           ruff check (skipped with a notice if ruff is absent)"
	@echo "  typecheck      mypy --strict over src/repro (skipped if mypy is absent)"
	@echo "  repro-lint     project-specific AST lint, per-file rules (fast)"
	@echo "  lint-deep      full analyzer: graph passes R010+, 30s budget, SARIF out"
	@echo "  test           tier-1 pytest suite"
	@echo "  test-contracts tier-1 suite with runtime contracts forced on"
	@echo "  check          repro-lint + lint + typecheck + test-contracts"
	@echo "  bench          benchmark suite (pytest-benchmark)"
	@echo "  perf           rewrite BENCH_PTPMINER.json from a fresh quick-matrix run"
	@echo "  perf-check     compare a fresh quick-matrix run against BENCH_PTPMINER.json"
	@echo "  profile        profile a sparse mine; writes profile.json + profile.folded"

lint:
	@if $(PYTHON) -c "import ruff" 2>/dev/null || command -v ruff >/dev/null 2>&1; then \
		ruff check src tests tools; \
	else \
		echo "ruff not installed; skipping (pip install -e .[dev])"; \
	fi

typecheck:
	@if $(PYTHON) -c "import mypy" 2>/dev/null; then \
		$(PYTHON) -m mypy --strict src/repro; \
	else \
		echo "mypy not installed; skipping (pip install -e .[dev])"; \
	fi

repro-lint:
	$(PYTHON) -m tools.repro_lint src tests

# Deep project-graph analyzer (determinism / boundary / purity /
# coverage / suppression audit). Blocking in CI; `timeout 30` enforces
# the documented runtime budget. Also writes the SARIF report.
lint-deep:
	timeout 30 $(PYTHON) -m tools.repro_lint --deep src tools tests
	$(PYTHON) -m tools.repro_lint --deep src tools tests \
		--format sarif --output repro-lint.sarif

test:
	$(PYTHON) -m pytest -x -q

test-contracts:
	REPRO_CONTRACTS=1 $(PYTHON) -m pytest -x -q

check: repro-lint lint-deep lint typecheck test-contracts

bench:
	$(PYTHON) -m pytest benches -q

perf:
	$(PYTHON) -m repro.perf update-baseline --matrix quick

perf-check:
	$(PYTHON) -m repro.perf compare --matrix quick

profile:
	$(PYTHON) -m repro.cli generate --dataset sparse --out /tmp/profile-db.txt
	$(PYTHON) -m repro.cli mine /tmp/profile-db.txt --min-sup 0.1 --top 0 \
		--profile >/dev/null
	$(PYTHON) -m repro.obs.profile profile.json
