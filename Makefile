PYTHON ?= python
export PYTHONPATH := src

.PHONY: help lint typecheck repro-lint test test-contracts check bench

help:
	@echo "Targets:"
	@echo "  lint           ruff check (skipped with a notice if ruff is absent)"
	@echo "  typecheck      mypy --strict over src/repro (skipped if mypy is absent)"
	@echo "  repro-lint     project-specific AST lint (always available)"
	@echo "  test           tier-1 pytest suite"
	@echo "  test-contracts tier-1 suite with runtime contracts forced on"
	@echo "  check          repro-lint + lint + typecheck + test-contracts"
	@echo "  bench          benchmark suite (pytest-benchmark)"

lint:
	@if $(PYTHON) -c "import ruff" 2>/dev/null || command -v ruff >/dev/null 2>&1; then \
		ruff check src tests tools; \
	else \
		echo "ruff not installed; skipping (pip install -e .[dev])"; \
	fi

typecheck:
	@if $(PYTHON) -c "import mypy" 2>/dev/null; then \
		$(PYTHON) -m mypy --strict src/repro; \
	else \
		echo "mypy not installed; skipping (pip install -e .[dev])"; \
	fi

repro-lint:
	$(PYTHON) -m tools.repro_lint src tests

test:
	$(PYTHON) -m pytest -x -q

test-contracts:
	REPRO_CONTRACTS=1 $(PYTHON) -m pytest -x -q

check: repro-lint lint typecheck test-contracts

bench:
	$(PYTHON) -m pytest benches -q
