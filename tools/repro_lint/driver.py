"""Analysis driver: shallow rules + deep passes + reporting formats.

The original ``python -m tools.repro_lint src tests`` flow (per-file
rules, text output) still lives in :func:`tools.repro_lint.engine.main`
and is what the fast ``make repro-lint`` gate runs. This module is the
full pipeline behind ``make lint-deep`` and ``ptpminer lint``:

1. parse every file once into :class:`FileContext` objects;
2. run the per-file rules (R001–R009);
3. in deep mode, build the :class:`ProjectGraph` over the ``src``
   modules and run the graph passes (R010–R016);
4. filter through suppressions (marking which ones fired);
5. in deep mode, run the suppression audit (R017) over what remains;
6. render as ``text``, ``json``, or ``sarif``.

Exit codes match the engine CLI: 0 clean, 1 findings, 2 usage/parse
error.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Iterable, Sequence
from pathlib import Path

from tools.repro_lint.engine import (
    FileContext,
    Violation,
    _is_suppressed,
    build_context,
    iter_python_files,
)
from tools.repro_lint.graph import ProjectGraph
from tools.repro_lint.passes import ALL_PASSES, PASS_RULES, audit
from tools.repro_lint.sarif import render_sarif

__all__ = [
    "analyze_contexts",
    "analyze_paths",
    "main",
    "render",
    "rule_catalog",
]


def rule_catalog(*, deep: bool = True) -> dict[str, str]:
    """code -> summary for every rule the requested mode can emit."""
    from tools.repro_lint.rules import ALL_RULES

    catalog = {rule.code: rule.summary for rule in ALL_RULES}
    if deep:
        catalog.update(PASS_RULES)
    return dict(sorted(catalog.items()))


def analyze_contexts(
    contexts: Sequence[FileContext], *, deep: bool = True
) -> list[Violation]:
    """Run the full pipeline over pre-built contexts (test seam)."""
    from tools.repro_lint.rules import ALL_RULES

    raw: list[Violation] = []
    for ctx in contexts:
        for rule in ALL_RULES:
            raw.extend(rule.check(ctx))
    if deep:
        graph = ProjectGraph()
        for ctx in contexts:
            graph.add_module(ctx)
        for pass_ in ALL_PASSES:
            raw.extend(pass_.run(graph))
    by_path = {ctx.path: ctx for ctx in contexts}
    kept = [
        violation
        for violation in raw
        if violation.path not in by_path
        or not _is_suppressed(by_path[violation.path], violation)
    ]
    if deep:
        kept.extend(audit(contexts))
    kept.sort(key=lambda v: (v.path, v.line, v.col, v.code))
    return kept


def analyze_paths(
    paths: Iterable[str | Path], *, deep: bool = True
) -> list[Violation]:
    """Analyze every python file under ``paths``."""
    contexts = [
        build_context(fp, fp.read_text())
        for fp in iter_python_files(paths)
    ]
    return analyze_contexts(contexts, deep=deep)


def render(
    violations: Sequence[Violation], fmt: str, *, deep: bool = True
) -> str:
    """Render findings as ``text``, ``json``, or ``sarif``."""
    if fmt == "text":
        return "\n".join(v.render() for v in violations)
    if fmt == "json":
        return json.dumps(
            [
                {
                    "path": v.path,
                    "line": v.line,
                    "col": v.col,
                    "code": v.code,
                    "message": v.message,
                }
                for v in violations
            ],
            indent=2,
        )
    if fmt == "sarif":
        return render_sarif(violations, rule_catalog(deep=deep))
    raise ValueError(f"unknown format: {fmt!r}")


def build_parser() -> argparse.ArgumentParser:
    """CLI parser shared with the ``ptpminer lint`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Project lint: per-file rules (R001-R009) plus, with "
            "--deep, graph passes for determinism, boundary "
            "shippability, purity, coverage, and suppression hygiene "
            "(R010-R017)."
        ),
    )
    parser.add_argument(
        "paths", nargs="+", help="files or directories to analyze"
    )
    parser.add_argument(
        "--deep",
        action="store_true",
        help="run the project-graph passes (R010+)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="write the report to a file instead of stdout",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point for ``python -m tools.repro_lint --deep ...``."""
    parser = build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        return 2 if exc.code not in (0, None) else 0
    try:
        violations = analyze_paths(args.paths, deep=args.deep)
    except (FileNotFoundError, SyntaxError) as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return 2
    report = render(violations, args.format, deep=args.deep)
    if args.output is not None:
        Path(args.output).write_text(report + "\n")
    elif report:
        print(report)
    count = len(violations)
    if count:
        print(f"repro-lint: {count} violation(s)", file=sys.stderr)
        return 1
    return 0
