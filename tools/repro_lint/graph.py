"""Project graph: modules, imports, classes, functions, and call edges.

The multi-pass analyzer (``tools.repro_lint.passes``) needs a view wider
than one file: which module a name comes from, which class a method
belongs to, what a call expression resolves to, and which functions are
reachable from a seed set. This module builds that view from nothing but
the stdlib ``ast`` — the same zero-dependency bar as the line rules.

Resolution is deliberately **conservative**: a call is given project
targets only when the receiver is statically known (a local definition,
an imported module/class/function, ``self``, a class name, or a
parameter whose annotation names a project class). Everything else
resolves to the empty set. Passes that prefer recall over precision
(the contracts/span coverage audit) can opt into *optimistic* attribute
resolution, where ``x.mine(...)`` matches every project method named
``mine``.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from tools.repro_lint.engine import FileContext, build_context

__all__ = [
    "ClassInfo",
    "FunctionInfo",
    "ModuleInfo",
    "ProjectGraph",
    "build_graph",
    "build_graph_from_sources",
]


def _decorator_name(dec: ast.expr) -> str | None:
    """The rightmost simple name of a decorator expression."""
    target = dec.func if isinstance(dec, ast.Call) else dec
    if isinstance(target, ast.Name):
        return target.id
    if isinstance(target, ast.Attribute):
        return target.attr
    return None


def _dataclass_frozen(node: ast.ClassDef) -> tuple[bool, bool]:
    """``(is_dataclass, frozen=True)`` from the decorator list."""
    for dec in node.decorator_list:
        name = _decorator_name(dec)
        if name != "dataclass":
            continue
        if not isinstance(dec, ast.Call):
            return True, False
        for kw in dec.keywords:
            if kw.arg == "frozen" and isinstance(kw.value, ast.Constant):
                return True, bool(kw.value.value)
        return True, False
    return False, False


@dataclass
class FunctionInfo:
    """One function or method, addressable by dotted qualname."""

    qualname: str
    module: str
    name: str
    cls: str | None
    node: ast.FunctionDef | ast.AsyncFunctionDef
    ctx: FileContext
    decorators: frozenset[str]

    @property
    def params(self) -> tuple[str, ...]:
        """Parameter names in call order (including ``self``/``cls``)."""
        args = self.node.args
        ordered = [a.arg for a in args.posonlyargs + args.args]
        ordered.extend(a.arg for a in args.kwonlyargs)
        return tuple(ordered)

    @property
    def is_method(self) -> bool:
        """True when defined inside a class body."""
        return self.cls is not None

    @property
    def is_static(self) -> bool:
        """True for ``@staticmethod`` methods."""
        return "staticmethod" in self.decorators

    def positional_params(self) -> tuple[str, ...]:
        """Params mapped to positional call arguments (``self`` dropped)."""
        args = self.node.args
        ordered = [a.arg for a in args.posonlyargs + args.args]
        if self.is_method and not self.is_static and ordered:
            ordered = ordered[1:]
        return tuple(ordered)

    def self_param(self) -> str | None:
        """Name of the receiver parameter (``self``), when there is one."""
        if not self.is_method or self.is_static:
            return None
        args = self.node.args
        ordered = [a.arg for a in args.posonlyargs + args.args]
        return ordered[0] if ordered else None

    def annotation_of(self, param: str) -> ast.expr | None:
        """The annotation AST node for ``param`` (``None`` if absent)."""
        args = self.node.args
        for arg in (
            list(args.posonlyargs)
            + list(args.args)
            + list(args.kwonlyargs)
            + [a for a in (args.vararg, args.kwarg) if a is not None]
        ):
            if arg.arg == param:
                return arg.annotation
        return None


@dataclass
class ClassInfo:
    """One class, with its methods and dataclass facts."""

    qualname: str
    module: str
    name: str
    node: ast.ClassDef
    ctx: FileContext
    is_dataclass: bool
    frozen: bool
    methods: dict[str, FunctionInfo] = field(default_factory=dict)

    def fields(self) -> list[tuple[str, ast.expr | None]]:
        """Dataclass-style annotated class attributes, in body order."""
        out: list[tuple[str, ast.expr | None]] = []
        for item in self.node.body:
            if isinstance(item, ast.AnnAssign) and isinstance(
                item.target, ast.Name
            ):
                if isinstance(item.annotation, ast.Name) and (
                    item.annotation.id == "ClassVar"
                ):
                    continue
                if (
                    isinstance(item.annotation, ast.Subscript)
                    and isinstance(item.annotation.value, ast.Name)
                    and item.annotation.value.id == "ClassVar"
                ):
                    continue
                out.append((item.target.id, item.annotation))
        return out


@dataclass
class ModuleInfo:
    """One parsed module: its context, imports, and top-level names."""

    name: str
    ctx: FileContext
    #: local name -> dotted target ("pkg.mod" or "pkg.mod.attr").
    imports: dict[str, str] = field(default_factory=dict)
    #: top-level assigned names -> the assigned expression (aliases).
    assignments: dict[str, ast.expr] = field(default_factory=dict)


class ProjectGraph:
    """Cross-module index over a set of parsed python sources."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self._by_method_name: dict[str, list[str]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_module(self, ctx: FileContext) -> None:
        """Index one parsed module (no-op for non-``src`` files)."""
        if ctx.module is None:
            return
        info = ModuleInfo(name=ctx.module, ctx=ctx)
        for node in ctx.tree.body:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    info.imports[local] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom) and node.module:
                if node.level:
                    continue  # relative imports are not used in this repo
                for alias in node.names:
                    local = alias.asname or alias.name
                    info.imports[local] = f"{node.module}.{alias.name}"
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        info.assignments[target.id] = node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if isinstance(node.target, ast.Name):
                    info.assignments[node.target.id] = node.value
        self.modules[ctx.module] = info
        for node in ctx.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(ctx, node, cls=None)
            elif isinstance(node, ast.ClassDef):
                self._add_class(ctx, node)

    def _add_function(
        self,
        ctx: FileContext,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        cls: str | None,
    ) -> FunctionInfo:
        assert ctx.module is not None
        prefix = f"{ctx.module}.{cls}." if cls else f"{ctx.module}."
        info = FunctionInfo(
            qualname=prefix + node.name,
            module=ctx.module,
            name=node.name,
            cls=cls,
            node=node,
            ctx=ctx,
            decorators=frozenset(
                name
                for dec in node.decorator_list
                if (name := _decorator_name(dec)) is not None
            ),
        )
        self.functions[info.qualname] = info
        if cls is not None:
            self._by_method_name.setdefault(node.name, []).append(
                info.qualname
            )
        return info

    def _add_class(self, ctx: FileContext, node: ast.ClassDef) -> None:
        assert ctx.module is not None
        is_dc, frozen = _dataclass_frozen(node)
        cls = ClassInfo(
            qualname=f"{ctx.module}.{node.name}",
            module=ctx.module,
            name=node.name,
            node=node,
            ctx=ctx,
            is_dataclass=is_dc,
            frozen=frozen,
        )
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                cls.methods[item.name] = self._add_function(
                    ctx, item, cls=node.name
                )
        self.classes[cls.qualname] = cls

    # ------------------------------------------------------------------
    # name and call resolution
    # ------------------------------------------------------------------
    def resolve_name(self, module: str, name: str) -> str | None:
        """Resolve a bare name in ``module`` to a project qualname.

        Checks local definitions first, then the import table, then
        module-level aliases (``alias = RealName``). Returns ``None``
        for names that do not land on a project function, class, or
        module.
        """
        info = self.modules.get(module)
        if info is None:
            return None
        direct = f"{module}.{name}"
        if direct in self.functions or direct in self.classes:
            return direct
        target = info.imports.get(name)
        if target is not None:
            if (
                target in self.functions
                or target in self.classes
                or target in self.modules
            ):
                return target
            return None
        alias = info.assignments.get(name)
        if isinstance(alias, ast.Name):
            if alias.id != name:
                return self.resolve_name(module, alias.id)
        return None

    def _annotation_class(
        self, module: str, annotation: ast.expr | None
    ) -> ClassInfo | None:
        """The project class a parameter annotation names, if any.

        Handles ``Cls``, ``mod.Cls``, ``Optional[Cls]``, and the quoted
        forward-reference form ``"Cls"``.
        """
        if annotation is None:
            return None
        if isinstance(annotation, ast.Constant) and isinstance(
            annotation.value, str
        ):
            try:
                annotation = ast.parse(
                    annotation.value, mode="eval"
                ).body
            except SyntaxError:
                return None
        if isinstance(annotation, ast.Subscript):
            base = annotation.value
            if isinstance(base, ast.Name) and base.id in (
                "Optional",
                "Annotated",
            ):
                inner = annotation.slice
                if isinstance(inner, ast.Tuple) and inner.elts:
                    inner = inner.elts[0]
                return self._annotation_class(module, inner)
            return None
        if isinstance(annotation, ast.Name):
            qual = self.resolve_name(module, annotation.id)
            return self.classes.get(qual) if qual else None
        if isinstance(annotation, ast.Attribute) and isinstance(
            annotation.value, ast.Name
        ):
            mod_target = self.resolve_name(module, annotation.value.id)
            if mod_target in self.modules:
                return self.classes.get(f"{mod_target}.{annotation.attr}")
        return None

    def param_class(
        self, fn: FunctionInfo, param: str
    ) -> ClassInfo | None:
        """The project class ``param`` is annotated with, if any."""
        return self._annotation_class(fn.module, fn.annotation_of(param))

    def resolve_call(
        self,
        caller: FunctionInfo,
        call: ast.Call,
        *,
        optimistic: bool = False,
    ) -> list[str]:
        """Project qualnames a call expression may target.

        Strict resolution covers: bare names (local defs / imports),
        ``self.method(...)``, ``mod.func(...)`` and ``mod.Cls(...)`` for
        imported modules, ``Cls.method(...)`` for known classes, method
        calls on parameters with project-class annotations, and class
        construction (mapped to ``__init__`` when defined). With
        ``optimistic=True``, an otherwise-unresolved attribute call
        additionally matches every project method of that name.
        """
        func = call.func
        out: list[str] = []
        if isinstance(func, ast.Name):
            qual = self.resolve_name(caller.module, func.id)
            if qual is not None:
                out.extend(self._callable_targets(qual))
        elif isinstance(func, ast.Attribute):
            out.extend(self._resolve_attr_call(caller, func))
            if not out and optimistic:
                out.extend(self._by_method_name.get(func.attr, []))
        return out

    def _resolve_attr_call(
        self, caller: FunctionInfo, func: ast.Attribute
    ) -> list[str]:
        if not isinstance(func.value, ast.Name):
            return []
        recv = func.value.id
        # self.method(...)
        if caller.cls is not None and recv == caller.self_param():
            cls = self.classes.get(f"{caller.module}.{caller.cls}")
            if cls is not None and func.attr in cls.methods:
                return [cls.methods[func.attr].qualname]
            return []
        # param.method(...) through the parameter annotation
        if recv in caller.params:
            cls = self.param_class(caller, recv)
            if cls is not None and func.attr in cls.methods:
                return [cls.methods[func.attr].qualname]
            return []
        # mod.func(...) / Cls.method(...)
        qual = self.resolve_name(caller.module, recv)
        if qual is None:
            return []
        if qual in self.modules:
            return self._callable_targets(f"{qual}.{func.attr}")
        cls = self.classes.get(qual)
        if cls is not None and func.attr in cls.methods:
            return [cls.methods[func.attr].qualname]
        return []

    def _callable_targets(self, qual: str) -> list[str]:
        """Map a resolved qualname to function targets (class → init)."""
        if qual in self.functions:
            return [qual]
        cls = self.classes.get(qual)
        if cls is not None:
            init = cls.methods.get("__init__")
            return [init.qualname] if init is not None else []
        return []

    # ------------------------------------------------------------------
    # reachability
    # ------------------------------------------------------------------
    def calls_in(self, fn: FunctionInfo) -> Iterator[ast.Call]:
        """Every call expression in ``fn``'s body (including nested defs)."""
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Call):
                yield node

    def reachable(
        self,
        seeds: Iterable[str],
        *,
        within_modules: Sequence[str] | None = None,
        optimistic: bool = False,
    ) -> set[str]:
        """Function qualnames reachable from ``seeds`` via resolved calls.

        Seeds missing from the graph are ignored (a pass's production
        seed list may name functions a trimmed fixture graph lacks).
        ``within_modules`` restricts *traversal and results* to the given
        module prefixes — the scoping tool for "merge paths only".
        """
        prefixes = tuple(within_modules) if within_modules else None

        def in_scope(qual: str) -> bool:
            if prefixes is None:
                return True
            module = self.functions[qual].module
            return any(
                module == p or module.startswith(p + ".") for p in prefixes
            )

        seen: set[str] = set()
        stack = [s for s in seeds if s in self.functions and in_scope(s)]
        while stack:
            qual = stack.pop()
            if qual in seen:
                continue
            seen.add(qual)
            fn = self.functions[qual]
            for call in self.calls_in(fn):
                for target in self.resolve_call(
                    fn, call, optimistic=optimistic
                ):
                    if target not in seen and in_scope(target):
                        stack.append(target)
        return seen


def build_graph_from_sources(
    sources: Iterable[tuple[str | Path, str]],
) -> ProjectGraph:
    """Build a graph from in-memory ``(path, source)`` pairs (tests)."""
    graph = ProjectGraph()
    for path, source in sources:
        graph.add_module(build_context(Path(path), source))
    return graph


def build_graph(paths: Iterable[str | Path]) -> ProjectGraph:
    """Build a graph from ``.py`` files under the given paths."""
    from tools.repro_lint.engine import iter_python_files

    graph = ProjectGraph()
    for file_path in iter_python_files(paths):
        graph.add_module(build_context(file_path, file_path.read_text()))
    return graph
