"""Module entry point: ``python -m tools.repro_lint [--deep] src tests``."""

from __future__ import annotations

import sys

from tools.repro_lint.driver import main

if __name__ == "__main__":
    sys.exit(main())
