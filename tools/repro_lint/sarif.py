"""SARIF 2.1.0 serialization for lint findings.

Static Analysis Results Interchange Format output lets CI surface
repro-lint findings in code-scanning UIs. Only the small, stable core
of the schema is emitted: one run, one tool driver with a rule catalog,
and one result per violation with a single physical location. Columns
are converted from the engine's 0-based offsets to SARIF's 1-based
ones; paths are emitted relative with forward slashes.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Mapping

from tools.repro_lint.engine import Violation

__all__ = ["SARIF_SCHEMA_URI", "SARIF_VERSION", "render_sarif", "to_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_TOOL_NAME = "repro-lint"
_TOOL_URI = "https://github.com/paper-repro/ptpminer"


def _artifact_uri(path: str) -> str:
    return path.replace("\\", "/").lstrip("./")


def to_sarif(
    violations: Iterable[Violation],
    rule_catalog: Mapping[str, str],
) -> dict[str, object]:
    """Build a SARIF 2.1.0 log dict for ``violations``.

    ``rule_catalog`` maps every rule code that may appear to its
    one-line summary; all catalog rules are declared in the driver
    section even when they produced no results, so code-scanning UIs
    can show the full rule set.
    """
    rules = [
        {
            "id": code,
            "name": code,
            "shortDescription": {"text": summary},
            "defaultConfiguration": {"level": "error"},
        }
        for code, summary in sorted(rule_catalog.items())
    ]
    results = [
        {
            "ruleId": violation.code,
            "level": "error",
            "message": {"text": violation.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": _artifact_uri(violation.path),
                        },
                        "region": {
                            "startLine": max(1, violation.line),
                            "startColumn": violation.col + 1,
                        },
                    }
                }
            ],
        }
        for violation in violations
    ]
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": _TOOL_NAME,
                        "informationUri": _TOOL_URI,
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }


def render_sarif(
    violations: Iterable[Violation],
    rule_catalog: Mapping[str, str],
) -> str:
    """Serialize ``violations`` as an indented SARIF JSON document."""
    return json.dumps(
        to_sarif(violations, rule_catalog), indent=2, sort_keys=False
    )
