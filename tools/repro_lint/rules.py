"""The repro-specific lint rules (R001–R009).

Each rule is a small object with a ``code``, a one-line ``summary``, and
a ``check(ctx)`` generator yielding :class:`Violation` objects. Scoping
conventions (which files a rule applies to) live inside each rule and
are documented in ``docs/static-analysis.md``.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from typing import Protocol

from tools.repro_lint.engine import FileContext, Violation

__all__ = [
    "ALL_RULES",
    "Rule",
    "EndpointConstructionRule",
    "MutableDefaultRule",
    "PublicApiRule",
    "DunderAllRule",
    "WallClockRule",
    "TimeImportRule",
    "ProfilingImportRule",
    "ProcessPoolRule",
    "MultiprocessingPrimitiveRule",
]

#: Module that owns canonical Endpoint construction (exempt from R001).
_ENDPOINT_MODULE = "repro.temporal.endpoint"

#: Call names whose result is a fresh mutable container (R002).
_MUTABLE_FACTORIES = {
    "list",
    "dict",
    "set",
    "bytearray",
    "defaultdict",
    "OrderedDict",
    "Counter",
    "deque",
}

#: Core mining packages where wall-clock reads are banned (R005).
_CORE_PREFIXES = ("repro.core", "repro.temporal")

#: Packages where *any* raw ``time`` import is banned (R006): all core
#: and observability timing must flow through the injectable
#: ``repro.obs.clock`` — including throttle paths in ``repro.obs``
#: itself, so ``ManualClock`` tests can drive heartbeats.
_OBS_CLOCK_PREFIXES = ("repro.core", "repro.obs")

#: The one module allowed to touch ``time`` directly (R006): it *is*
#: the injection seam.
_CLOCK_MODULE = "repro.obs.clock"

#: Packages where profiling imports are banned (R007): profiling is a
#: harness concern, installed from outside via ``repro.obs.profile``.
_NO_PROFILING_PREFIXES = ("repro.core", "repro.baselines")

#: Top-level module names R007 bans inside the mining packages.
_PROFILING_MODULES = frozenset(
    {"cProfile", "profile", "pstats", "tracemalloc"}
)

#: The one module allowed to construct a process pool (R008).
_ENGINE_MODULE = "repro.engine"

#: Modules allowed to construct multiprocessing queues/pipes (R009):
#: the live telemetry bus and the engine that wires it to workers.
_MP_ALLOWED_MODULES = ("repro.obs.live", "repro.engine")

#: ``multiprocessing`` primitives R009 bans elsewhere.
_MP_PRIMITIVES = frozenset(
    {"Queue", "SimpleQueue", "JoinableQueue", "Pipe", "Manager"}
)


class Rule(Protocol):
    """Interface every lint rule implements."""

    code: str
    summary: str

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        """Yield violations found in ``ctx``."""
        ...


def _called_name(node: ast.Call) -> str | None:
    """The simple name being called, for ``f(...)`` and ``m.f(...)``."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


class EndpointConstructionRule:
    """R001 — ``Endpoint(...)`` may only be built by the canonical encoder.

    A hand-built endpoint can violate canonical occurrence numbering or
    kind ordering without crashing, silently corrupting mined patterns.
    Production code must obtain endpoints from
    ``repro.temporal.endpoint`` (``endpoint_sequence_of``,
    ``EncodedDatabase.decode_token``, ``Endpoint.parse``) or derive them
    from an existing endpoint via ``._replace``. Tests are exempt: they
    construct raw endpoints on purpose to probe validation.
    """

    code = "R001"
    summary = "direct Endpoint(...) construction outside the canonical encoder"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        """Flag ``Endpoint(...)`` call expressions in non-exempt files."""
        if ctx.is_test or ctx.module == _ENDPOINT_MODULE:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call) and _called_name(node) == "Endpoint":
                yield ctx.violation(
                    node,
                    self.code,
                    "direct Endpoint(...) construction; go through "
                    "repro.temporal.endpoint (encoder, decode_token, parse, "
                    "or ._replace on an existing endpoint)",
                )


class MutableDefaultRule:
    """R002 — no mutable default arguments, anywhere.

    ``def f(x=[])`` shares one list across calls; the same applies to
    dict/set displays, comprehensions, and mutable-container factory
    calls used as defaults.
    """

    code = "R002"
    summary = "mutable default argument"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        """Flag mutable expressions used as parameter defaults."""
        for node in ast.walk(ctx.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            defaults = list(node.args.defaults)
            defaults.extend(d for d in node.args.kw_defaults if d is not None)
            for default in defaults:
                if self._is_mutable(default):
                    yield ctx.violation(
                        default,
                        self.code,
                        "mutable default argument; default to None and "
                        "build the container inside the function",
                    )

    @staticmethod
    def _is_mutable(node: ast.expr) -> bool:
        if isinstance(
            node,
            (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp),
        ):
            return True
        return (
            isinstance(node, ast.Call)
            and _called_name(node) in _MUTABLE_FACTORIES
        )


def _is_public_name(name: str) -> bool:
    return not name.startswith("_")


def _is_dunder(name: str) -> bool:
    return name.startswith("__") and name.endswith("__")


def _decorator_names(node: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    names: set[str] = set()
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        if isinstance(target, ast.Name):
            names.add(target.id)
        elif isinstance(target, ast.Attribute):
            names.add(target.attr)
    return names


class PublicApiRule:
    """R003 — public API in ``src/repro`` is annotated and documented.

    Every public module-level function, public class, and public method
    must carry complete parameter annotations, a return annotation, and
    a docstring. Dunder methods and ``@overload`` stubs are exempt.
    """

    code = "R003"
    summary = "public function/class missing annotations or docstring"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        """Check top-level defs and one level of class bodies."""
        if not ctx.in_repro_src or ctx.is_test:
            return
        for node in ctx.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if _is_public_name(node.name):
                    yield from self._check_function(ctx, node, method=False)
            elif isinstance(node, ast.ClassDef) and _is_public_name(node.name):
                if ast.get_docstring(node) is None:
                    yield ctx.violation(
                        node,
                        self.code,
                        f"public class {node.name!r} has no docstring",
                    )
                for item in node.body:
                    if not isinstance(
                        item, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        continue
                    if _is_dunder(item.name) or not _is_public_name(item.name):
                        continue
                    yield from self._check_function(ctx, item, method=True)

    def _check_function(
        self,
        ctx: FileContext,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        *,
        method: bool,
    ) -> Iterator[Violation]:
        decorators = _decorator_names(node)
        if "overload" in decorators:
            return
        kind = "method" if method else "function"
        if ast.get_docstring(node) is None:
            yield ctx.violation(
                node,
                self.code,
                f"public {kind} {node.name!r} has no docstring",
            )
        args = node.args
        positional = list(args.posonlyargs) + list(args.args)
        if method and "staticmethod" not in decorators and positional:
            positional = positional[1:]  # self / cls
        unannotated = [
            arg.arg
            for arg in (
                positional
                + list(args.kwonlyargs)
                + [a for a in (args.vararg, args.kwarg) if a is not None]
            )
            if arg.annotation is None
        ]
        if unannotated:
            yield ctx.violation(
                node,
                self.code,
                f"public {kind} {node.name!r} has unannotated "
                f"parameter(s): {', '.join(unannotated)}",
            )
        if node.returns is None:
            yield ctx.violation(
                node,
                self.code,
                f"public {kind} {node.name!r} has no return annotation",
            )


class DunderAllRule:
    """R004 — ``__all__`` exists and matches the module's public names.

    Every ``src/repro`` module must define a literal ``__all__``; every
    public top-level function/class must be listed in it, and every
    listed name must actually be defined (or imported) at top level.
    Public constants and type aliases may stay out of ``__all__``.
    """

    code = "R004"
    summary = "__all__ missing or inconsistent with public names"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        """Compare ``__all__`` against top-level definitions."""
        if not ctx.in_repro_src or ctx.is_test:
            return
        exported, all_node = self._find_all(ctx.tree)
        if all_node is None:
            yield Violation(
                path=ctx.path,
                line=1,
                col=0,
                code=self.code,
                message="module defines no literal __all__",
            )
            return
        defined = self._top_level_names(ctx.tree)
        public_defs = {
            node.name
            for node in ctx.tree.body
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            )
            and _is_public_name(node.name)
        }
        for name in sorted(public_defs - exported):
            yield ctx.violation(
                all_node,
                self.code,
                f"public name {name!r} is defined but missing from __all__",
            )
        for name in sorted(exported - defined):
            yield ctx.violation(
                all_node,
                self.code,
                f"__all__ exports {name!r} which is not defined at top level",
            )

    @staticmethod
    def _find_all(tree: ast.Module) -> tuple[set[str], ast.stmt | None]:
        for node in tree.body:
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            for target in targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    if isinstance(value, (ast.List, ast.Tuple)):
                        names = {
                            elt.value
                            for elt in value.elts
                            if isinstance(elt, ast.Constant)
                            and isinstance(elt.value, str)
                        }
                        return names, node
                    return set(), node
        return set(), None

    @staticmethod
    def _top_level_names(tree: ast.Module) -> set[str]:
        names: set[str] = set()
        for node in tree.body:
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                names.add(node.name)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
                    elif isinstance(target, ast.Tuple):
                        names.update(
                            elt.id
                            for elt in target.elts
                            if isinstance(elt, ast.Name)
                        )
            elif isinstance(node, ast.AnnAssign):
                if isinstance(node.target, ast.Name):
                    names.add(node.target.id)
            elif isinstance(node, ast.Import):
                names.update(
                    (alias.asname or alias.name).split(".")[0]
                    for alias in node.names
                )
            elif isinstance(node, ast.ImportFrom):
                names.update(
                    alias.asname or alias.name for alias in node.names
                )
        return names


class WallClockRule:
    """R005 — no wall-clock ``time.time()`` in core mining code.

    Timing belongs to the harness; the miners account elapsed time at
    their public boundary with the monotonic ``time.perf_counter``.
    ``time.time()`` inside ``repro.core`` / ``repro.temporal`` is either
    dead instrumentation or a nondeterminism hazard.
    """

    code = "R005"
    summary = "wall-clock time.time() in core mining code"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        """Flag ``time.time()`` calls and ``from time import time``."""
        if ctx.module is None or not ctx.module.startswith(_CORE_PREFIXES):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr == "time"
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "time"
                ):
                    yield ctx.violation(
                        node,
                        self.code,
                        "time.time() in core mining code; timing belongs "
                        "to the harness (use time.perf_counter at miner "
                        "boundaries)",
                    )
            elif isinstance(node, ast.ImportFrom) and node.module == "time":
                if any(alias.name == "time" for alias in node.names):
                    yield ctx.violation(
                        node,
                        self.code,
                        "importing wall-clock time() into core mining code",
                    )


class TimeImportRule:
    """R006 — no raw ``time`` imports in ``repro.core`` or ``repro.obs``.

    The miners' boundary timing goes through the injectable
    :mod:`repro.obs.clock` (so tests can drive a manual clock and traces
    share one time base). A raw ``import time`` in ``repro.core``
    bypasses that seam — use ``repro.obs.clock.now()`` instead. The
    observability layer itself is held to the same bar: every throttle
    path (progress heartbeats, the live telemetry bus) must be drivable
    by :class:`~repro.obs.clock.ManualClock` tests, so only
    ``repro.obs.clock`` — the seam — may touch ``time``. Stricter than
    R005: R005 bans only wall-clock ``time.time()`` (and also covers
    ``repro.temporal``); R006 bans the module import itself.
    """

    code = "R006"
    summary = "raw time import in repro.core/repro.obs (use repro.obs.clock)"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        """Flag ``import time`` and ``from time import ...``."""
        if ctx.module is None or not ctx.module.startswith(
            _OBS_CLOCK_PREFIXES
        ):
            return
        if ctx.module == _CLOCK_MODULE:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[0] == "time":
                        yield ctx.violation(
                            node,
                            self.code,
                            "raw 'import time' in repro.core/repro.obs; "
                            "route timing through the injectable "
                            "repro.obs.clock",
                        )
            elif isinstance(node, ast.ImportFrom) and node.module == "time":
                yield ctx.violation(
                    node,
                    self.code,
                    "raw 'from time import ...' in repro.core/repro.obs; "
                    "route timing through the injectable repro.obs.clock",
                )


class ProfilingImportRule:
    """R007 — no raw profiling imports inside the mining packages.

    ``cProfile``/``profile``/``pstats``/``tracemalloc`` inside
    ``repro.core`` or ``repro.baselines`` would put measurement overhead
    (and a second opinion about *how* to measure) on the hot path the
    measurements are supposed to describe. Profiling is installed from
    outside: :func:`repro.obs.profile.profile_scope` attaches per-phase
    profiles through the span tracer, and
    :func:`repro.harness.metrics.measure` owns tracemalloc. Like the
    other rules, a deliberate exception is declared inline with
    ``# repro-lint: ignore[R007]``.
    """

    code = "R007"
    summary = "raw profiling import in mining code (use repro.obs.profile)"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        """Flag imports of profiling modules in ``repro.core``/baselines."""
        if ctx.module is None or not ctx.module.startswith(
            _NO_PROFILING_PREFIXES
        ):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[0] in _PROFILING_MODULES:
                        yield ctx.violation(
                            node,
                            self.code,
                            f"raw '{alias.name}' import in mining code; "
                            "profiling is installed from outside via "
                            "repro.obs.profile / repro.harness.metrics",
                        )
            elif (
                isinstance(node, ast.ImportFrom)
                and node.module is not None
                and node.module.split(".")[0] in _PROFILING_MODULES
            ):
                yield ctx.violation(
                    node,
                    self.code,
                    f"raw 'from {node.module} import ...' in mining code; "
                    "profiling is installed from outside via "
                    "repro.obs.profile / repro.harness.metrics",
                )


class ProcessPoolRule:
    """R008 — process pools may only be built by :mod:`repro.engine`.

    The sharded engine is the single owner of worker-process lifecycle:
    it silences inherited observability handles in the pool initializer,
    ships the database once per worker, and merges per-shard results so
    the determinism guarantee (and the exact-counter perf gate) holds.
    A ``ProcessPoolExecutor`` constructed anywhere else would bypass all
    of that — route parallelism through
    :func:`repro.engine.mine_sharded` / :class:`repro.engine.ShardedMiner`
    instead. Tests are exempt; a deliberate exception is declared inline
    with ``# repro-lint: ignore[R008]``.
    """

    code = "R008"
    summary = "ProcessPoolExecutor built outside repro.engine"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        """Flag ``ProcessPoolExecutor(...)`` calls outside the engine."""
        if ctx.is_test or ctx.module == _ENGINE_MODULE:
            return
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and _called_name(node) == "ProcessPoolExecutor"
            ):
                yield ctx.violation(
                    node,
                    self.code,
                    "ProcessPoolExecutor built outside repro.engine; "
                    "route parallel mining through repro.engine "
                    "(mine_sharded / ShardedMiner)",
                )


class MultiprocessingPrimitiveRule:
    """R009 — mp queues/pipes only in :mod:`repro.obs.live` + engine.

    The live telemetry bus and the sharded engine jointly own the one
    cross-process channel in this codebase (a manager queue shipped to
    workers through the pool initializer, drained from the result loop).
    A ``multiprocessing`` ``Queue``/``SimpleQueue``/``JoinableQueue``/
    ``Pipe``/``Manager`` constructed anywhere else would create a second,
    unmanaged channel — outside the engine's worker lifecycle, invisible
    to the zero-cost-when-disabled A/B gate, and a deadlock hazard at
    interpreter shutdown. Route streaming through the bus
    (:func:`repro.engine.mine_sharded` ``live=``) instead. Tests are
    exempt; a deliberate exception is declared inline with
    ``# repro-lint: ignore[R009]``.
    """

    code = "R009"
    summary = (
        "multiprocessing queue/pipe built outside repro.obs.live/"
        "repro.engine"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        """Flag mp primitive construction outside the allowed modules."""
        if ctx.is_test or ctx.module in _MP_ALLOWED_MODULES:
            return
        mp_aliases: set[str] = set()
        direct_names: dict[str, str] = {}
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[0] == "multiprocessing":
                        mp_aliases.add(
                            alias.asname or alias.name.split(".")[0]
                        )
            elif (
                isinstance(node, ast.ImportFrom)
                and node.module is not None
                and node.module.split(".")[0] == "multiprocessing"
            ):
                for alias in node.names:
                    if alias.name in _MP_PRIMITIVES:
                        direct_names[alias.asname or alias.name] = alias.name
        if not mp_aliases and not direct_names:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            primitive: str | None = None
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _MP_PRIMITIVES
                and isinstance(func.value, ast.Name)
                and func.value.id in mp_aliases
            ):
                primitive = func.attr
            elif isinstance(func, ast.Name) and func.id in direct_names:
                primitive = direct_names[func.id]
            if primitive is not None:
                yield ctx.violation(
                    node,
                    self.code,
                    f"multiprocessing.{primitive}(...) outside "
                    "repro.obs.live/repro.engine; stream through the "
                    "live telemetry bus (mine_sharded(live=...)) instead",
                )


#: The registry the engine runs, in code order.
ALL_RULES: tuple[Rule, ...] = (
    EndpointConstructionRule(),
    MutableDefaultRule(),
    PublicApiRule(),
    DunderAllRule(),
    WallClockRule(),
    TimeImportRule(),
    ProfilingImportRule(),
    ProcessPoolRule(),
    MultiprocessingPrimitiveRule(),
)
