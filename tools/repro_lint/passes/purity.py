"""Plan-cache consumer purity audit (R015).

The serving-layer plan (ROADMAP) caches the output of
``PTPMiner.plan_root`` — the encoded database, level-1 counters, and
root candidate map — and replays ``search_shard`` against it many
times. That is only sound if every consumer treats the cached
structures as immutable. This pass enforces it by *inference*: starting
from the declared cache-consumer entry points, it tracks each protected
parameter through the call graph (strict resolution only) and flags

* any direct mutation of a protected parameter (attribute / item
  stores, ``del``, mutating method calls such as ``.append`` /
  ``.update`` — see :data:`tools.repro_lint.dataflow.MUTATING_METHODS`),
  including through simple local aliases (``m = param``); and
* mutations in callees the parameter is passed into, propagated
  positionally and by keyword until the worklist fixes.

Unresolvable calls receiving a protected parameter are *not* flagged
(strict resolution prefers precision); the runtime bit-for-bit
equivalence tests remain the backstop for those edges.
"""

from __future__ import annotations

import ast

from tools.repro_lint.dataflow import effects_of
from tools.repro_lint.engine import Violation
from tools.repro_lint.graph import ProjectGraph

__all__ = ["CACHE_CONSUMERS", "PurityPass"]

#: (function qualname, protected parameter names). These are the seams
#: the serving layer will replay against cached plan structures.
CACHE_CONSUMERS: tuple[tuple[str, tuple[str, ...]], ...] = (
    (
        "repro.core.ptpminer.PTPMiner.plan_root",
        ("db", "weights"),
    ),
    (
        "repro.core.ptpminer.PTPMiner.search_shard",
        ("mining_db", "weights", "candidates"),
    ),
    (
        "repro.engine._run_shard",
        ("task",),
    ),
)


class PurityPass:
    """R015: cached plan structures may only meet pure readers."""

    name = "purity"
    rules = {
        "R015": (
            "plan-cached structure is mutated by an inferred-impure "
            "consumer"
        ),
    }

    def run(self, graph: ProjectGraph) -> list[Violation]:
        """Chase every protected parameter to a fixpoint."""
        out: list[Violation] = []
        worklist: list[tuple[str, str]] = [
            (qual, param)
            for qual, params in CACHE_CONSUMERS
            if qual in graph.functions
            for param in params
        ]
        seen: set[tuple[str, str]] = set(worklist)
        while worklist:
            qual, param = worklist.pop()
            fn = graph.functions[qual]
            if param not in fn.params:
                continue
            effects = effects_of(fn.node)
            for site in effects.mutated_params.get(param, []):
                out.append(
                    fn.ctx.violation(
                        site.node,
                        "R015",
                        f"{fn.qualname}() mutates plan-cached parameter "
                        f"{param!r} ({site.why}); cache consumers must "
                        "be pure readers",
                    )
                )
            for callee_qual, callee_param in self._flows(
                graph, qual, param
            ):
                key = (callee_qual, callee_param)
                if key not in seen:
                    seen.add(key)
                    worklist.append(key)
        out.sort(key=lambda v: (v.path, v.line, v.col))
        return out

    def _flows(
        self, graph: ProjectGraph, qual: str, param: str
    ) -> list[tuple[str, str]]:
        """(callee, callee-param) pairs the protected value flows into."""
        fn = graph.functions[qual]
        flows: list[tuple[str, str]] = []
        for call in graph.calls_in(fn):
            positions = [
                i
                for i, arg in enumerate(call.args)
                if isinstance(arg, ast.Name) and arg.id == param
            ]
            keywords = [
                kw.arg
                for kw in call.keywords
                if kw.arg is not None
                and isinstance(kw.value, ast.Name)
                and kw.value.id == param
            ]
            if not positions and not keywords:
                continue
            for target_qual in graph.resolve_call(fn, call):
                target = graph.functions[target_qual]
                callee_params = target.positional_params()
                for pos in positions:
                    if pos < len(callee_params):
                        flows.append((target_qual, callee_params[pos]))
                for kw_name in keywords:
                    if kw_name in target.params:
                        flows.append((target_qual, kw_name))
        return flows
