"""Determinism audit (R010–R013).

The engine's core guarantee (DESIGN §12) is that sharded mining is
bit-for-bit identical to serial mining for any worker count. Everything
downstream of the per-shard results — counter merges, metrics
absorption, live-frame aggregation, trace re-emission — must therefore
be insensitive to shard *arrival order*. This pass walks the functions
reachable from those merge seams and flags constructs whose result
depends on an unordered iteration order:

* **R010** — iterating a set / dict view and *emitting in that order*
  (``.append`` / ``.extend`` / ``.insert`` / ``yield``). Keyed stores
  (``d[k] = ...``) are order-independent and not flagged.
* **R013** — order-sensitive numeric accumulation over an unordered
  source: ``total += x`` inside such a loop (float addition is not
  associative), or ``sum(...)`` over an unordered collection. Clearly
  integral values (``int(...)``, ``len(...)``, int literals) are exempt
  — int addition commutes exactly.

Two further rules apply to the whole ``repro`` package, not just merge
paths:

* **R011** — calls through the process-global ``random`` RNG. Global
  RNG state is invisible cross-module and unseeded by default; the
  sanctioned pattern is an explicit ``random.Random(seed)`` instance.
* **R012** — ``id()`` or ``hash()`` inside a sort key. ``id()`` varies
  per process; ``hash()`` of str/bytes varies per ``PYTHONHASHSEED``.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from tools.repro_lint.dataflow import unordered_names, unordered_reason
from tools.repro_lint.engine import FileContext, Violation
from tools.repro_lint.graph import FunctionInfo, ProjectGraph

__all__ = ["DeterminismPass", "MERGE_MODULES", "MERGE_SEEDS"]

#: Functions on the shard-result merge path. Everything reachable from
#: these (within :data:`MERGE_MODULES`) is held to order-insensitivity.
MERGE_SEEDS = (
    "repro.engine.mine_sharded",
    "repro.engine._reemit_shard_trace",
    "repro.core.pruning.PruneCounters.merge",
    "repro.core.pruning.PruneCounters.publish",
    "repro.obs.metrics.MetricsRegistry.absorb",
    "repro.obs.metrics.MetricsRegistry.absorb_snapshot",
    "repro.obs.costmodel.CostCollector.absorb",
    "repro.obs.provenance.ProvenanceCollector.absorb",
    "repro.obs.live.LiveAggregator.ingest",
    "repro.obs.live.LiveAggregator.summary",
    "repro.obs.live.LiveAggregator.eta_s",
    "repro.obs.live.LiveAggregator.stragglers",
    "repro.obs.live.LiveAggregator.maybe_render",
)

#: Modules the merge-path traversal may enter. Deliberately excludes the
#: serial search core (``repro.core.ptpminer``), whose set iterations
#: feed keyed, order-independent accumulation and are exercised by the
#: bit-for-bit equivalence tests directly.
MERGE_MODULES = (
    "repro.engine",
    "repro.core.pruning",
    "repro.obs.metrics",
    "repro.obs.live",
    "repro.obs.trace",
    "repro.obs.costmodel",
    "repro.obs.provenance",
)

_EMITTING_METHODS = frozenset({"append", "extend", "insert"})
_SORT_CALLS = frozenset({"sorted", "min", "max"})
_UNSEEDED_OK = frozenset({"Random"})


def _is_int_like(expr: ast.expr) -> bool:
    """True when ``expr`` is statically known to be an int."""
    if isinstance(expr, ast.Constant) and type(expr.value) is int:
        return True
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
        return expr.func.id in ("int", "len")
    return False


class DeterminismPass:
    """R010–R013: order-dependence hazards in and around merge paths."""

    name = "determinism"
    rules = {
        "R010": (
            "unordered iteration feeds ordered emission on a merge path"
        ),
        "R011": "process-global random RNG used in repro code",
        "R012": "id()/hash() used in a sort key",
        "R013": (
            "order-sensitive accumulation over an unordered source on a "
            "merge path"
        ),
    }

    def run(self, graph: ProjectGraph) -> list[Violation]:
        """Run the audit over ``graph``; returns raw (unsuppressed) hits."""
        found: dict[tuple[str, int, int, str], Violation] = {}
        merge_fns = graph.reachable(
            MERGE_SEEDS, within_modules=MERGE_MODULES
        )
        for qual in sorted(merge_fns):
            fn = graph.functions[qual]
            for violation in self._scan_merge_function(fn):
                key = (
                    violation.path,
                    violation.line,
                    violation.col,
                    violation.code,
                )
                found.setdefault(key, violation)
        out = list(found.values())
        for module in sorted(graph.modules):
            info = graph.modules[module]
            if not info.ctx.in_repro_src or info.ctx.is_test:
                continue
            out.extend(self._scan_global_random(info.ctx, info.imports))
            out.extend(self._scan_sort_keys(info.ctx))
        return out

    # ------------------------------------------------------------------
    # R010 / R013 — merge-path order sensitivity
    # ------------------------------------------------------------------
    def _scan_merge_function(
        self, fn: FunctionInfo
    ) -> Iterator[Violation]:
        derived = unordered_names(fn.node)
        for loop in ast.walk(fn.node):
            if not isinstance(loop, ast.For):
                continue
            reason = unordered_reason(loop.iter, derived)
            if reason is None:
                continue
            yield from self._scan_loop_body(fn, loop, reason)
        for node in ast.walk(fn.node):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "sum"
                and node.args
            ):
                reason = unordered_reason(node.args[0], derived)
                if reason is not None:
                    yield fn.ctx.violation(
                        node,
                        "R013",
                        f"sum() over {reason} in merge-reachable "
                        f"{fn.qualname}(); float addition is "
                        "order-sensitive — sort the source first",
                    )

    def _scan_loop_body(
        self, fn: FunctionInfo, loop: ast.For, reason: str
    ) -> Iterator[Violation]:
        for stmt in loop.body:
            for node in ast.walk(stmt):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _EMITTING_METHODS
                ):
                    yield fn.ctx.violation(
                        node,
                        "R010",
                        f".{node.func.attr}() inside a loop over {reason} "
                        f"in merge-reachable {fn.qualname}(); emission "
                        "order is unspecified — iterate sorted(...)",
                    )
                elif isinstance(node, (ast.Yield, ast.YieldFrom)):
                    yield fn.ctx.violation(
                        node,
                        "R010",
                        f"yield inside a loop over {reason} in "
                        f"merge-reachable {fn.qualname}(); emission order "
                        "is unspecified — iterate sorted(...)",
                    )
                elif (
                    isinstance(node, ast.AugAssign)
                    and isinstance(node.op, (ast.Add, ast.Sub, ast.Mult))
                    and isinstance(
                        node.target, (ast.Name, ast.Attribute)
                    )
                    and not _is_int_like(node.value)
                ):
                    yield fn.ctx.violation(
                        node,
                        "R013",
                        f"accumulation inside a loop over {reason} in "
                        f"merge-reachable {fn.qualname}(); float addition "
                        "is order-sensitive — iterate sorted(...) or "
                        "accumulate exactly",
                    )

    # ------------------------------------------------------------------
    # R011 — process-global random
    # ------------------------------------------------------------------
    def _scan_global_random(
        self, ctx: FileContext, imports: dict[str, str]
    ) -> Iterator[Violation]:
        rng_modules = {
            local for local, target in imports.items() if target == "random"
        }
        rng_funcs = {
            local: target
            for local, target in imports.items()
            if target.startswith("random.")
        }
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in rng_modules
                and func.attr not in _UNSEEDED_OK
            ):
                name = f"{func.value.id}.{func.attr}"
            elif (
                isinstance(func, ast.Name)
                and func.id in rng_funcs
                and rng_funcs[func.id].split(".")[-1] not in _UNSEEDED_OK
            ):
                name = rng_funcs[func.id]
            else:
                continue
            yield ctx.violation(
                node,
                "R011",
                f"{name}() uses the process-global RNG; construct an "
                "explicit random.Random(seed) and thread it through",
            )

    # ------------------------------------------------------------------
    # R012 — id()/hash() in sort keys
    # ------------------------------------------------------------------
    def _scan_sort_keys(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            is_sort = (
                isinstance(func, ast.Name) and func.id in _SORT_CALLS
            ) or (
                isinstance(func, ast.Attribute) and func.attr == "sort"
            )
            if not is_sort:
                continue
            for kw in node.keywords:
                if kw.arg != "key":
                    continue
                for inner in ast.walk(kw.value):
                    if (
                        isinstance(inner, ast.Call)
                        and isinstance(inner.func, ast.Name)
                        and inner.func.id in ("id", "hash")
                    ):
                        yield ctx.violation(
                            inner,
                            "R012",
                            f"{inner.func.id}() in a sort key: the order "
                            "varies per process/hash seed — key on "
                            "stable value fields instead",
                        )
