"""Engine-boundary shippability audit (R014).

Everything that crosses the parent→worker process boundary in
``repro.engine`` — the pool initializer, its ``initargs``, the callables
handed to ``pool.submit`` / ``pool.map``, and the task objects those
callables receive — must be picklable, frozen, and free of hidden
process state. This pass checks, for every ``ProcessPoolExecutor``
construction and pool dispatch site in the engine module:

* the initializer and dispatched callables are **module-level named
  functions** (bound methods, lambdas, and closures either fail to
  pickle or silently re-bind in the child);
* no ``lambda``, generator expression, or ``open()`` handle appears in
  ``initargs`` or dispatch arguments;
* every project class annotating a parameter of a worker entry function
  is a **frozen dataclass** whose fields are transitively shippable:
  immutable builtins, tuples/frozensets thereof, or further frozen
  project dataclasses. Mutable containers (``list``/``dict``/``set``/
  ``bytearray``) in those fields are flagged — a worker mutating shared
  task state breaks the bit-for-bit guarantee silently under ``fork``;
* functions reachable from worker entries (within the engine module) do
  not write module-level state, except names matching the sanctioned
  per-process payload convention (``_WORKER*``). Cross-module writes via
  setter seams (e.g. ``repro.obs.trace.set_tracer``) are outside strict
  resolution and are sanctioned by design — workers silence obs first.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from tools.repro_lint.dataflow import effects_of
from tools.repro_lint.engine import Violation
from tools.repro_lint.graph import ClassInfo, FunctionInfo, ProjectGraph

__all__ = ["BoundaryPass", "ENGINE_MODULES"]

#: Modules whose pool boundaries are audited (the only modules allowed
#: to build process pools at all, per rule R008).
ENGINE_MODULES = ("repro.engine",)

#: Annotation heads that ship safely across the pickle boundary.
_IMMUTABLE_HEADS = frozenset(
    {
        "int",
        "float",
        "str",
        "bool",
        "bytes",
        "complex",
        "None",
        "tuple",
        "frozenset",
        "Tuple",
        "FrozenSet",
        "Optional",
        "Union",
        "Literal",
        "Final",
        "Ellipsis",
    }
)

#: Annotation heads that are mutable and must not ride in a frozen task.
_MUTABLE_HEADS = frozenset(
    {"list", "dict", "set", "bytearray", "List", "Dict", "Set"}
)

#: Module-level names workers may legitimately write: the per-process
#: payload slot(s) installed by the pool initializer.
_WORKER_STATE_PREFIX = "_WORKER"

_DISPATCH_METHODS = frozenset({"submit", "map"})


def _unshippable_expr(expr: ast.expr) -> tuple[ast.AST, str] | None:
    """First pickle-hostile construct inside ``expr``, if any."""
    for node in ast.walk(expr):
        if isinstance(node, ast.Lambda):
            return node, "a lambda"
        if isinstance(node, ast.GeneratorExp):
            return node, "a generator expression"
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "open"
        ):
            return node, "an open() handle"
    return None


class BoundaryPass:
    """R014: objects crossing the pool boundary must ship cleanly."""

    name = "boundary"
    rules = {
        "R014": (
            "object crossing the ShardTask/pool-initializer boundary is "
            "not shippable"
        ),
    }

    def run(self, graph: ProjectGraph) -> list[Violation]:
        """Audit every pool boundary in :data:`ENGINE_MODULES`."""
        out: list[Violation] = []
        for module in sorted(graph.modules):
            if module not in ENGINE_MODULES:
                continue
            info = graph.modules[module]
            entries: list[str] = []
            for fn in self._module_functions(graph, module):
                for call in graph.calls_in(fn):
                    out.extend(
                        self._check_call_site(graph, fn, call, entries)
                    )
            out.extend(self._check_entries(graph, entries))
            out.extend(
                self._check_worker_globals(graph, module, entries)
            )
        return out

    def _module_functions(
        self, graph: ProjectGraph, module: str
    ) -> list[FunctionInfo]:
        return [
            fn
            for qual, fn in sorted(graph.functions.items())
            if fn.module == module
        ]

    # ------------------------------------------------------------------
    # call sites: pool construction and dispatch
    # ------------------------------------------------------------------
    def _check_call_site(
        self,
        graph: ProjectGraph,
        fn: FunctionInfo,
        call: ast.Call,
        entries: list[str],
    ) -> Iterator[Violation]:
        func = call.func
        is_pool_ctor = (
            isinstance(func, ast.Name)
            and func.id == "ProcessPoolExecutor"
        ) or (
            isinstance(func, ast.Attribute)
            and func.attr == "ProcessPoolExecutor"
        )
        if is_pool_ctor:
            yield from self._check_pool_ctor(graph, fn, call, entries)
            return
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _DISPATCH_METHODS
            and not isinstance(func.value, ast.Attribute)
        ):
            # pool.submit(f, ...) / pool.map(f, ...). Non-pool receivers
            # with these method names do not occur in the engine module;
            # the R008 fence keeps it that way.
            if not call.args:
                return
            yield from self._check_dispatched(
                graph, fn, call.args[0], entries
            )
            for arg in call.args[1:]:
                bad = _unshippable_expr(arg)
                if bad is not None:
                    node, what = bad
                    yield fn.ctx.violation(
                        node,
                        "R014",
                        f"{what} passed through pool.{func.attr}() "
                        "cannot cross the process boundary",
                    )

    def _check_pool_ctor(
        self,
        graph: ProjectGraph,
        fn: FunctionInfo,
        call: ast.Call,
        entries: list[str],
    ) -> Iterator[Violation]:
        for kw in call.keywords:
            if kw.arg == "initializer":
                yield from self._check_dispatched(
                    graph, fn, kw.value, entries
                )
            elif kw.arg == "initargs":
                bad = _unshippable_expr(kw.value)
                if bad is not None:
                    node, what = bad
                    yield fn.ctx.violation(
                        node,
                        "R014",
                        f"{what} in initargs cannot cross the process "
                        "boundary",
                    )

    def _check_dispatched(
        self,
        graph: ProjectGraph,
        fn: FunctionInfo,
        expr: ast.expr,
        entries: list[str],
    ) -> Iterator[Violation]:
        if not isinstance(expr, ast.Name):
            yield fn.ctx.violation(
                expr,
                "R014",
                "callable crossing the pool boundary must be a "
                "module-level function named directly (got a "
                f"{type(expr).__name__} expression)",
            )
            return
        qual = graph.resolve_name(fn.module, expr.id)
        target = graph.functions.get(qual) if qual else None
        if target is None or target.cls is not None:
            yield fn.ctx.violation(
                expr,
                "R014",
                f"{expr.id!r} crossing the pool boundary does not "
                "resolve to a module-level function in this project",
            )
            return
        entries.append(target.qualname)

    # ------------------------------------------------------------------
    # worker entry signatures: frozen, transitively shippable tasks
    # ------------------------------------------------------------------
    def _check_entries(
        self, graph: ProjectGraph, entries: list[str]
    ) -> Iterator[Violation]:
        for qual in sorted(set(entries)):
            fn = graph.functions[qual]
            for param in fn.positional_params():
                cls = graph.param_class(fn, param)
                if cls is None:
                    continue
                yield from self._check_shippable_class(
                    graph, cls, seen=set()
                )

    def _check_shippable_class(
        self,
        graph: ProjectGraph,
        cls: ClassInfo,
        seen: set[str],
    ) -> Iterator[Violation]:
        if cls.qualname in seen:
            return
        seen.add(cls.qualname)
        if not cls.is_dataclass:
            # Plain classes (e.g. the shipped database) are accepted:
            # their picklability is covered by runtime round-trip tests.
            return
        if not cls.frozen:
            yield cls.ctx.violation(
                cls.node,
                "R014",
                f"{cls.name} crosses the worker boundary but is not a "
                "frozen dataclass",
            )
        for field_name, annotation in cls.fields():
            if annotation is None:
                continue
            yield from self._check_field(
                graph, cls, field_name, annotation, seen
            )

    def _check_field(
        self,
        graph: ProjectGraph,
        cls: ClassInfo,
        field_name: str,
        annotation: ast.expr,
        seen: set[str],
    ) -> Iterator[Violation]:
        for name_node, head in self._annotation_heads(
            graph, cls.module, annotation, set()
        ):
            if head in _MUTABLE_HEADS:
                yield cls.ctx.violation(
                    name_node,
                    "R014",
                    f"field {cls.name}.{field_name} carries mutable "
                    f"{head!r} across the worker boundary; use "
                    "tuple/frozenset or a frozen dataclass",
                )
            else:
                qual = graph.resolve_name(cls.module, head)
                inner = graph.classes.get(qual) if qual else None
                if inner is not None:
                    yield from self._check_shippable_class(
                        graph, inner, seen
                    )

    def _annotation_heads(
        self,
        graph: ProjectGraph,
        module: str,
        annotation: ast.expr,
        visiting: set[str],
    ) -> Iterator[tuple[ast.AST, str]]:
        """Yield ``(node, name)`` for every type name in an annotation.

        Follows module-level aliases (``_TaskCandidate = tuple[...]``)
        one level at a time, guarding against alias cycles.
        """
        for node in ast.walk(annotation):
            if not isinstance(node, ast.Name):
                continue
            name = node.id
            if name in _IMMUTABLE_HEADS:
                continue
            info = graph.modules.get(module)
            alias = info.assignments.get(name) if info else None
            if alias is not None and name not in visiting:
                yield from self._annotation_heads(
                    graph, module, alias, visiting | {name}
                )
            else:
                yield node, name

    # ------------------------------------------------------------------
    # worker-reachable module state
    # ------------------------------------------------------------------
    def _check_worker_globals(
        self, graph: ProjectGraph, module: str, entries: list[str]
    ) -> Iterator[Violation]:
        info = graph.modules[module]
        module_names = set(info.assignments) | set(info.imports)
        reach = graph.reachable(
            sorted(set(entries)), within_modules=(module,)
        )
        for qual in sorted(reach):
            fn = graph.functions[qual]
            effects = effects_of(
                fn.node, module_level_names=module_names
            )
            for name, site in effects.global_writes:
                if name.startswith(_WORKER_STATE_PREFIX):
                    continue
                yield fn.ctx.violation(
                    site,
                    "R014",
                    f"worker-reachable {fn.qualname}() writes "
                    f"module-level state {name!r}; per-process payload "
                    f"must live under {_WORKER_STATE_PREFIX}* names",
                )
