"""Suppression hygiene audit (R017).

A suppression comment is a debt marker; this audit keeps the ledger
honest. After the driver has filtered violations (marking which
suppressions actually fired), it calls :func:`audit` over the
``src/repro`` file contexts and reports:

* **unused** suppressions — the named rule no longer fires on that
  line; delete the comment (the accidental variant, prose that happens
  to contain ``repro-lint: ignore[...]``, is caught the same way);
* **expired** suppressions — the ``until=`` deadline has passed; fix
  the underlying finding (which has already resurfaced, since expired
  suppressions stop suppressing) or renegotiate the deadline;
* **malformed** suppressions — an ``until=`` token that cannot be
  evaluated (e.g. the relative form ``until=PR+2``; write the absolute
  PR number instead);
* **unscoped** suppressions — the legacy blanket ``# repro-lint:
  ignore`` with no rule list, which hides future findings unrelated to
  the one it was written for.

R017 itself is unsuppressable (see ``engine.UNSUPPRESSABLE``): an audit
that can be silenced by the thing it audits is theatre. It is also
scoped to non-test ``src/repro`` files — docs and test fixtures quote
suppression syntax without owing anything to the ledger.
"""

from __future__ import annotations

from collections.abc import Iterable

from tools.repro_lint.engine import FileContext, Violation

__all__ = ["SUPPRESSION_RULES", "audit"]

SUPPRESSION_RULES = {
    "R017": "stale, expired, malformed, or unscoped lint suppression",
}


def audit(contexts: Iterable[FileContext]) -> list[Violation]:
    """Audit suppression comments after violation filtering ran."""
    out: list[Violation] = []

    def at(ctx: FileContext, line: int, message: str) -> Violation:
        return Violation(
            path=ctx.path, line=line, col=0, code="R017", message=message
        )

    for ctx in contexts:
        if not ctx.in_repro_src or ctx.is_test:
            continue
        for supp in ctx.suppressions:
            scope = (
                ", ".join(sorted(supp.codes))
                if supp.codes
                else "all rules"
            )
            if supp.malformed is not None:
                out.append(
                    at(ctx, supp.line, f"suppression ({scope}): {supp.malformed}")
                )
                continue
            if supp.expired:
                out.append(
                    at(
                        ctx,
                        supp.line,
                        f"suppression ({scope}) expired at "
                        f"until={supp.until}; fix the finding or extend "
                        "the deadline",
                    )
                )
                continue
            if not supp.used:
                out.append(
                    at(
                        ctx,
                        supp.line,
                        f"unused suppression ({scope}): nothing fires "
                        "on this line — delete the comment",
                    )
                )
            elif not supp.scoped:
                out.append(
                    at(
                        ctx,
                        supp.line,
                        "unscoped blanket 'ignore' suppression; name "
                        "the rule codes it is meant to cover",
                    )
                )
    return out
