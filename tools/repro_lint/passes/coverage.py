"""Contracts / observability coverage audit (R016).

The mining entry points are the seams users and the harness actually
call; each must carry *some* machine-checked self-description — either
a runtime contract (``repro.contracts.check`` / ``@contract``) or a
trace span (``repro.obs.trace.span``) — somewhere on its call path.
An entry point with neither is invisible to both the contract gate and
the run reports, which is how silent regressions start.

Coverage is computed with *optimistic* reachability (an unresolved
``x.mine(...)`` matches every project method named ``mine``): for a
coverage audit, recall beats precision — a false "covered" is cheaper
than a false alarm on a function that routes through a dispatch table.
"""

from __future__ import annotations

import ast

from tools.repro_lint.engine import Violation
from tools.repro_lint.graph import FunctionInfo, ProjectGraph

__all__ = ["CoveragePass", "ENTRY_POINT_NAMES", "ENTRY_POINT_MODULES"]

#: Function names that count as mining entry points when defined in an
#: entry-point module (module-level or as public methods).
ENTRY_POINT_NAMES = frozenset(
    {
        "mine",
        "mine_weighted",
        "mine_top_k",
        "mine_sharded",
        "plan_root",
        "search_shard",
    }
)

#: Module prefixes whose entry points are audited.
ENTRY_POINT_MODULES = ("repro.core", "repro.engine")

#: Call names that prove contract or span coverage.
_COVERAGE_CALLS = frozenset({"span", "check", "contract"})


def _has_marker(fn: FunctionInfo) -> bool:
    """True when ``fn`` itself contains a contract or span marker."""
    for dec in fn.node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        name = (
            target.id
            if isinstance(target, ast.Name)
            else target.attr
            if isinstance(target, ast.Attribute)
            else None
        )
        if name == "contract":
            return True
    for node in ast.walk(fn.node):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr
            if isinstance(func, ast.Attribute)
            else None
        )
        if name in _COVERAGE_CALLS:
            return True
    return False


class CoveragePass:
    """R016: every mining entry point reaches a contract or a span."""

    name = "coverage"
    rules = {
        "R016": (
            "mining entry point lacks contract and span coverage on "
            "every reachable path"
        ),
    }

    def run(self, graph: ProjectGraph) -> list[Violation]:
        """Audit the entry points present in ``graph``."""
        out: list[Violation] = []
        for qual in sorted(graph.functions):
            fn = graph.functions[qual]
            if not self._is_entry_point(fn):
                continue
            reach = graph.reachable([qual], optimistic=True)
            if any(
                _has_marker(graph.functions[r]) for r in sorted(reach)
            ):
                continue
            out.append(
                fn.ctx.violation(
                    fn.node,
                    "R016",
                    f"entry point {fn.qualname}() reaches no "
                    "contracts.check/@contract or obs span; add one so "
                    "the contract gate and run reports can see it",
                )
            )
        return out

    def _is_entry_point(self, fn: FunctionInfo) -> bool:
        if fn.name not in ENTRY_POINT_NAMES:
            return False
        if fn.cls is not None and fn.cls.startswith("_"):
            return False
        return any(
            fn.module == prefix or fn.module.startswith(prefix + ".")
            for prefix in ENTRY_POINT_MODULES
        )
