"""Project-wide analysis passes (rule IDs R010+).

Unlike the line rules in :mod:`tools.repro_lint.rules`, which see one
:class:`~tools.repro_lint.engine.FileContext` at a time, a pass sees the
whole :class:`~tools.repro_lint.graph.ProjectGraph` and can reason about
reachability, call targets, and cross-module structure. Passes are run
by :mod:`tools.repro_lint.driver` in deep mode only (``--deep`` /
``make lint-deep``).

The suppression audit (R017) is special: it must observe which
suppressions actually fired, so the driver runs it *after* suppression
filtering — see :func:`tools.repro_lint.passes.suppressions.audit`.
"""

from __future__ import annotations

from tools.repro_lint.passes.boundary import BoundaryPass
from tools.repro_lint.passes.coverage import CoveragePass
from tools.repro_lint.passes.determinism import DeterminismPass
from tools.repro_lint.passes.ledger import LedgerPass
from tools.repro_lint.passes.provenance import ProvenancePass
from tools.repro_lint.passes.purity import PurityPass
from tools.repro_lint.passes.suppressions import SUPPRESSION_RULES, audit

__all__ = [
    "ALL_PASSES",
    "PASS_RULES",
    "audit",
    "BoundaryPass",
    "CoveragePass",
    "DeterminismPass",
    "LedgerPass",
    "ProvenancePass",
    "PurityPass",
]

#: Graph passes in execution order. R017 (suppression audit) is not in
#: this list — the driver invokes :func:`audit` after filtering.
ALL_PASSES = (
    DeterminismPass(),
    BoundaryPass(),
    PurityPass(),
    CoveragePass(),
    LedgerPass(),
    ProvenancePass(),
)

#: code -> one-line summary for every deep rule, R017 included. The
#: driver merges this with the line-rule catalog for SARIF metadata and
#: the meta-tests assert docs/tests/fixtures against it.
PASS_RULES: dict[str, str] = {
    code: summary
    for p in ALL_PASSES
    for code, summary in p.rules.items()
}
PASS_RULES.update(SUPPRESSION_RULES)
