"""Provenance record-path audit (R019).

Pattern provenance (:mod:`repro.obs.provenance`) promises two things:
recording is *free when disabled* (one hoisted ``active_collector()``
local plus an ``is not None`` guard per hook) and sharded snapshots
merge bit-for-bit with serial runs (disjoint keyed unions). Both break
if instrumentation sites construct or fetch collectors ad hoc: a
``ProvenanceCollector()`` built inline records into an object nobody
snapshots, and a per-call ``active_collector()`` lookup inside a hot
loop silently re-introduces overhead the A/B benchmark gates out.

This pass flags, in every non-test ``repro`` module except
``repro.obs.provenance`` itself, any call to a provenance record method
(``record_emitted`` / ``record_pruned`` / ``record_pruned_label``)
whose receiver is not a plain name bound from the collector seam — an
``active_collector()`` assignment or a ``with use_collector(...) as
name:`` binding (``enter_context(use_collector(...))`` counts too).

The binding scan is module-wide by design: the miner hoists ``prov =
active_collector()`` once per search and records through closures, so
scoping bindings per-function would flag the sanctioned pattern.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from tools.repro_lint.engine import FileContext, Violation
from tools.repro_lint.graph import ProjectGraph

__all__ = ["ProvenancePass", "PROVENANCE_MODULE"]

#: The one module allowed to touch collector internals directly.
PROVENANCE_MODULE = "repro.obs.provenance"

#: The ProvenanceCollector mutation surface.
_RECORD_METHODS = frozenset(
    {"record_emitted", "record_pruned", "record_pruned_label"}
)

#: Seam entry points whose result is a sanctioned collector binding.
_SEAM_CALLS = frozenset({"active_collector", "use_collector"})


def _call_name(expr: ast.expr) -> str | None:
    """Terminal callable name of ``expr`` when it is a call, else None.

    Unwraps ``enter_context(...)`` / ``stack.enter_context(...)`` so
    ``prov = stack.enter_context(use_collector())`` resolves to
    ``use_collector``.
    """
    if not isinstance(expr, ast.Call):
        return None
    func = expr.func
    name = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else None
    )
    if name == "enter_context" and expr.args:
        return _call_name(expr.args[0])
    return name


def _seam_bound_names(tree: ast.AST) -> set[str]:
    """Names bound (anywhere in the module) from a seam call."""
    bound: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            value = node.value
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            if value is not None and _call_name(value) in _SEAM_CALLS:
                for target in targets:
                    if isinstance(target, ast.Name):
                        bound.add(target.id)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if (
                    _call_name(item.context_expr) in _SEAM_CALLS
                    and isinstance(item.optional_vars, ast.Name)
                ):
                    bound.add(item.optional_vars.id)
    return bound


class ProvenancePass:
    """R019: provenance records flow only through the collector seam."""

    name = "provenance"
    rules = {
        "R019": (
            "provenance recorded outside the collector seam "
            "(active_collector/use_collector binding)"
        ),
    }

    def run(self, graph: ProjectGraph) -> list[Violation]:
        """Audit every non-test repro module except provenance itself."""
        out: list[Violation] = []
        for module in sorted(graph.modules):
            info = graph.modules[module]
            ctx = info.ctx
            if not ctx.in_repro_src or ctx.is_test:
                continue
            if module == PROVENANCE_MODULE:
                continue
            out.extend(self._scan_module(ctx))
        return out

    def _scan_module(self, ctx: FileContext) -> Iterator[Violation]:
        seam_names = _seam_bound_names(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _RECORD_METHODS
            ):
                continue
            receiver = node.func.value
            if isinstance(receiver, ast.Name) and (
                receiver.id in seam_names
            ):
                continue
            yield ctx.violation(
                node,
                "R019",
                f".{node.func.attr}() on a receiver not bound from the "
                "provenance seam; hoist `prov = active_collector()` (or "
                "`with use_collector() as prov:`) and record through "
                "that local so disabled runs stay free and snapshots "
                "stay mergeable",
            )
