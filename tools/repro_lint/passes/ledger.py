"""Run-ledger write-path audit (R018, R020).

The run ledger (:mod:`repro.obs.ledger`) is append-only and
schema-versioned; those guarantees only hold if every write goes
through :meth:`repro.obs.ledger.RunLedger.append`, which validates the
entry shape and appends exactly one JSON line. A stray ``open(...,
"a")`` elsewhere in the package could write unvalidated lines, truncate
the file, or fork the schema silently — the history/diff tooling would
then misread every later run.

This pass flags, in every non-test ``repro`` module except
``repro.obs.ledger`` itself:

* ``open(path, "w"/"a"/"x"/"+")`` and ``path.open(...)`` in a write
  mode where the path expression mentions a ledger (an identifier or
  string constant containing ``"ledger"``);
* ``.write_text(...)`` / ``.write_bytes(...)`` on such a receiver.

Read-mode opens are fine — ``RunLedger.entries()`` is convenience, not
a choke point — and unrelated writes (reports, traces, metrics) never
match. The heuristic is name-based by design: ledger paths in this
codebase always flow through ``ledger_dir``/``ledger_path`` variables
or the literal ``ledger.jsonl`` filename.

R020 guards the layer above the file: entries appended to a ledger
must be assembled by :func:`repro.obs.ledger.build_entry`, which stamps
the schema version and normalises the cost/plan/calibration blocks.
A dict literal passed straight to ``.append(...)`` on a ledger receiver
would freeze whatever fields the call site happened to write — the
schema bump that added ``cost.roots`` and the calibration record would
silently miss such entries, and ``entries()`` would then warn on (or
misread) them forever. Flagged in the same modules R018 scans.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from tools.repro_lint.engine import FileContext, Violation
from tools.repro_lint.graph import ProjectGraph

__all__ = ["LedgerPass", "LEDGER_MODULE"]

#: The one module allowed to write ledger files.
LEDGER_MODULE = "repro.obs.ledger"

_WRITE_METHODS = frozenset({"write_text", "write_bytes"})


def _mentions_ledger(expr: ast.expr) -> bool:
    """True when any identifier or string in ``expr`` names a ledger."""
    for node in ast.walk(expr):
        if isinstance(node, ast.Name) and "ledger" in node.id.lower():
            return True
        if isinstance(node, ast.Attribute) and (
            "ledger" in node.attr.lower()
        ):
            return True
        if (
            isinstance(node, ast.Constant)
            and isinstance(node.value, str)
            and "ledger" in node.value.lower()
        ):
            return True
    return False


def _write_mode(call: ast.Call, *, mode_arg_index: int) -> bool:
    """True when an ``open``-style call's mode is a constant write mode.

    Dynamic mode expressions are not guessed at — the repo convention
    is literal modes, and a false negative beats flagging reads.
    """
    mode_expr: ast.expr | None = None
    if len(call.args) > mode_arg_index:
        mode_expr = call.args[mode_arg_index]
    for kw in call.keywords:
        if kw.arg == "mode":
            mode_expr = kw.value
    if not (
        isinstance(mode_expr, ast.Constant)
        and isinstance(mode_expr.value, str)
    ):
        return False
    return any(flag in mode_expr.value for flag in "wax+")


class LedgerPass:
    """R018/R020: ledger writes flow through the append/build_entry API."""

    name = "ledger"
    rules = {
        "R018": (
            "ledger file written outside the repro.obs.ledger append API"
        ),
        "R020": (
            "ledger entry built as a dict literal instead of build_entry"
        ),
    }

    def run(self, graph: ProjectGraph) -> list[Violation]:
        """Audit every non-test repro module except the ledger itself."""
        out: list[Violation] = []
        for module in sorted(graph.modules):
            info = graph.modules[module]
            ctx = info.ctx
            if not ctx.in_repro_src or ctx.is_test:
                continue
            if module == LEDGER_MODULE:
                continue
            out.extend(self._scan_module(ctx))
        return out

    def _scan_module(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Name)
                and func.id == "open"
                and node.args
                and _write_mode(node, mode_arg_index=1)
                and _mentions_ledger(node.args[0])
            ):
                yield ctx.violation(
                    node,
                    "R018",
                    "ledger path opened for writing outside "
                    "repro.obs.ledger; append entries through "
                    "RunLedger.append() so the file stays append-only "
                    "and schema-validated",
                )
            elif (
                isinstance(func, ast.Attribute)
                and func.attr == "open"
                and _write_mode(node, mode_arg_index=0)
                and _mentions_ledger(func.value)
            ):
                yield ctx.violation(
                    node,
                    "R018",
                    "ledger path .open()ed for writing outside "
                    "repro.obs.ledger; append entries through "
                    "RunLedger.append() so the file stays append-only "
                    "and schema-validated",
                )
            elif (
                isinstance(func, ast.Attribute)
                and func.attr in _WRITE_METHODS
                and _mentions_ledger(func.value)
            ):
                yield ctx.violation(
                    node,
                    "R018",
                    f".{func.attr}() on a ledger path outside "
                    "repro.obs.ledger rewrites the file wholesale; "
                    "append entries through RunLedger.append()",
                )
            elif (
                isinstance(func, ast.Attribute)
                and func.attr == "append"
                and _mentions_ledger(func.value)
                and node.args
                and isinstance(node.args[0], (ast.Dict, ast.DictComp))
            ):
                yield ctx.violation(
                    node,
                    "R020",
                    "dict literal appended to a ledger; assemble the "
                    "entry with repro.obs.ledger.build_entry() so the "
                    "schema version and cost/plan/calibration blocks "
                    "stay consistent",
                )
