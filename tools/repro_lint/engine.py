"""Lint engine: file discovery, suppression handling, rule dispatch.

The engine is deliberately dependency-free (stdlib ``ast`` only) so the
lint gate runs anywhere the test suite runs, including the bare CI
container. Rules live in :mod:`tools.repro_lint.rules`; this module owns
everything rule-independent: walking paths, classifying files (test
module? inside ``src/repro``?), parsing sources, applying
``# repro-lint: ignore[...]`` suppressions, and the CLI.
"""

from __future__ import annotations

import ast
import re
import sys
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "FileContext",
    "Violation",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "main",
]

#: Matches a suppression comment anywhere in a line. Group 1, when
#: present, is the comma-separated code list; absent means "all rules".
_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*ignore(?:\[([A-Za-z0-9_,\s]+)\])?"
)

_SKIP_DIR_NAMES = {"__pycache__", ".git", ".ruff_cache", ".mypy_cache"}


@dataclass(frozen=True)
class Violation:
    """One lint finding, reported as ``path:line:col: CODE message``."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        """Human/CI-readable single-line form."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


@dataclass(frozen=True)
class FileContext:
    """Everything a rule needs to know about one source file."""

    path: str
    source: str
    tree: ast.Module
    is_test: bool
    module: str | None  # dotted module name when under src/, else None
    suppressions: dict[int, frozenset[str] | None] = field(default_factory=dict)

    @property
    def in_repro_src(self) -> bool:
        """True for modules of the shipped ``repro`` package."""
        return self.module is not None and (
            self.module == "repro" or self.module.startswith("repro.")
        )

    def violation(self, node: ast.AST, code: str, message: str) -> Violation:
        """Build a :class:`Violation` anchored at ``node``."""
        return Violation(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=code,
            message=message,
        )


def _parse_suppressions(source: str) -> dict[int, frozenset[str] | None]:
    """Map 1-based line number -> suppressed codes (``None`` = all)."""
    table: dict[int, frozenset[str] | None] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        codes_text = match.group(1)
        if codes_text is None:
            table[lineno] = None
        else:
            codes = frozenset(
                code.strip() for code in codes_text.split(",") if code.strip()
            )
            table[lineno] = codes if codes else None
    return table


def _module_name(path: Path) -> str | None:
    """Dotted module name for files under a ``src/`` root (else None)."""
    parts = path.parts
    if "src" not in parts:
        return None
    rel = parts[parts.index("src") + 1 :]
    if not rel or not rel[-1].endswith(".py"):
        return None
    pieces = list(rel[:-1])
    stem = rel[-1][: -len(".py")]
    if stem != "__init__":
        pieces.append(stem)
    return ".".join(pieces) if pieces else None


def _is_test_file(path: Path) -> bool:
    name = path.name
    return (
        "tests" in path.parts
        or name.startswith("test_")
        or name == "conftest.py"
    )


def build_context(path: Path, source: str) -> FileContext:
    """Parse ``source`` and classify ``path`` for the rules."""
    tree = ast.parse(source, filename=str(path))
    return FileContext(
        path=str(path),
        source=source,
        tree=tree,
        is_test=_is_test_file(path),
        module=_module_name(path),
        suppressions=_parse_suppressions(source),
    )


def _is_suppressed(ctx: FileContext, violation: Violation) -> bool:
    codes = ctx.suppressions.get(violation.line, frozenset())
    if codes is None:  # bare "ignore": every rule on this line
        return True
    return violation.code in codes


def lint_source(
    source: str,
    path: str | Path = "<string>",
    rules: Sequence[object] | None = None,
) -> list[Violation]:
    """Lint one in-memory source text; returns surviving violations.

    Raises :class:`SyntaxError` when the source does not parse — a file
    that cannot be parsed is a build problem, not a lint finding.
    """
    from tools.repro_lint.rules import ALL_RULES

    ctx = build_context(Path(path), source)
    active = ALL_RULES if rules is None else rules
    found: list[Violation] = []
    for rule in active:
        for violation in rule.check(ctx):  # type: ignore[attr-defined]
            if not _is_suppressed(ctx, violation):
                found.append(violation)
    found.sort(key=lambda v: (v.path, v.line, v.col, v.code))
    return found


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Yield ``.py`` files under the given files/directories, sorted."""
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                if not _SKIP_DIR_NAMES.intersection(sub.parts):
                    yield sub
        elif path.suffix == ".py":
            yield path
        else:
            raise FileNotFoundError(f"not a python file or directory: {path}")


def lint_paths(paths: Iterable[str | Path]) -> list[Violation]:
    """Lint every python file under ``paths``."""
    found: list[Violation] = []
    for file_path in iter_python_files(paths):
        found.extend(lint_source(file_path.read_text(), file_path))
    return found


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point: ``python -m tools.repro_lint src tests``."""
    args = list(sys.argv[1:] if argv is None else argv)
    if not args or any(a in ("-h", "--help") for a in args):
        print(__doc__, file=sys.stderr)
        print("usage: python -m tools.repro_lint PATH [PATH ...]", file=sys.stderr)
        return 0 if args else 2
    try:
        violations = lint_paths(args)
    except (FileNotFoundError, SyntaxError) as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return 2
    for violation in violations:
        print(violation.render())
    count = len(violations)
    if count:
        print(f"repro-lint: {count} violation(s)", file=sys.stderr)
        return 1
    return 0
