"""Lint engine: file discovery, suppression handling, rule dispatch.

The engine is deliberately dependency-free (stdlib ``ast`` only) so the
lint gate runs anywhere the test suite runs, including the bare CI
container. Rules live in :mod:`tools.repro_lint.rules`; this module owns
everything rule-independent: walking paths, classifying files (test
module? inside ``src/repro``?), parsing sources, applying
``# repro-lint:`` suppressions, and the CLI.

Suppression syntax (one comment per line, applies to that line):

* ``# repro-lint: R010`` — suppress R010 here, indefinitely.
* ``# repro-lint: R010, R013 until=PR8`` — suppress until the repo
  reaches PR 8 (compared against :data:`CURRENT_PR`); after that the
  suppression stops working and the deep-lint audit (R017) flags it.
* ``# repro-lint: R010 until=2026-12-31`` — same, with a calendar
  deadline.
* ``# repro-lint: ignore[R010]`` — legacy spelling, still honoured.
* ``# repro-lint: ignore`` — legacy blanket form; still suppresses, but
  the deep audit flags it inside ``src/repro`` as unscoped.

Expired or malformed suppressions fail *closed*: they stop suppressing,
so the underlying violation resurfaces alongside the audit finding.
"""

from __future__ import annotations

import ast
import re
import sys
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field
from datetime import date
from pathlib import Path

__all__ = [
    "CURRENT_PR",
    "FileContext",
    "Suppression",
    "Violation",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "main",
]

#: The repo's PR sequence number, bumped once per landed PR. ``until=PRn``
#: suppressions stay active while ``CURRENT_PR < n``.
CURRENT_PR = 6

#: Matches a suppression comment anywhere in a line. Either the legacy
#: ``ignore``/``ignore[...]`` form (group 1 = bracketed code list) or a
#: bare comma-separated code list (group 2), optionally followed by an
#: ``until=`` expiry token (group 3).
_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*"
    r"(?:ignore(?:\[([A-Za-z0-9_,\s]+)\])?|([A-Z]\d{3}(?:\s*,\s*[A-Z]\d{3})*))"
    r"(?:\s+until=([^\s#]+))?"
)

_PR_TOKEN_RE = re.compile(r"PR(\d+)")

_SKIP_DIR_NAMES = {"__pycache__", ".git", ".ruff_cache", ".mypy_cache"}


@dataclass(frozen=True)
class Violation:
    """One lint finding, reported as ``path:line:col: CODE message``."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        """Human/CI-readable single-line form."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


@dataclass
class Suppression:
    """One parsed ``# repro-lint:`` comment.

    ``used`` flips to True the first time the suppression actually hides
    a violation; the deep-lint audit (R017) reports suppressions that
    never fire.
    """

    line: int
    codes: frozenset[str] | None  # None = legacy blanket "ignore"
    until: str | None = None  # raw expiry token, e.g. "PR8"
    expired: bool = False
    malformed: str | None = None  # reason, when the comment can't apply
    used: bool = False

    @property
    def scoped(self) -> bool:
        """True when the comment names explicit rule codes."""
        return self.codes is not None

    @property
    def active(self) -> bool:
        """True when the suppression may still hide violations."""
        return not self.expired and self.malformed is None

    def matches(self, code: str) -> bool:
        """True when this suppression covers rule ``code``."""
        return self.codes is None or code in self.codes


def _parse_until(token: str) -> tuple[bool, str | None]:
    """Evaluate an ``until=`` token -> (expired, malformed-reason)."""
    pr_match = _PR_TOKEN_RE.fullmatch(token)
    if pr_match is not None:
        return CURRENT_PR >= int(pr_match.group(1)), None
    if token.startswith("PR"):
        return False, (
            f"unevaluable expiry {token!r} (use an absolute PR number, "
            f"e.g. until=PR{CURRENT_PR + 2}, or an ISO date)"
        )
    try:
        deadline = date.fromisoformat(token)
    except ValueError:
        return False, f"unparseable expiry {token!r} (expected PRn or ISO date)"
    return date.today() > deadline, None


@dataclass(frozen=True)
class FileContext:
    """Everything a rule needs to know about one source file."""

    path: str
    source: str
    tree: ast.Module
    is_test: bool
    module: str | None  # dotted module name when under src/, else None
    suppressions: tuple[Suppression, ...] = ()

    @property
    def in_repro_src(self) -> bool:
        """True for modules of the shipped ``repro`` package."""
        return self.module is not None and (
            self.module == "repro" or self.module.startswith("repro.")
        )

    def violation(self, node: ast.AST, code: str, message: str) -> Violation:
        """Build a :class:`Violation` anchored at ``node``."""
        return Violation(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=code,
            message=message,
        )


def _parse_suppressions(source: str) -> tuple[Suppression, ...]:
    """Parse every ``# repro-lint:`` comment into a :class:`Suppression`."""
    found: list[Suppression] = []
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        codes_text = match.group(1) or match.group(2)
        codes: frozenset[str] | None
        if codes_text is None:
            codes = None
        else:
            parsed = frozenset(
                code.strip() for code in codes_text.split(",") if code.strip()
            )
            codes = parsed if parsed else None
        until = match.group(3)
        expired = False
        malformed: str | None = None
        if until is not None:
            expired, malformed = _parse_until(until)
        found.append(
            Suppression(
                line=lineno,
                codes=codes,
                until=until,
                expired=expired,
                malformed=malformed,
            )
        )
    return tuple(found)


def _module_name(path: Path) -> str | None:
    """Dotted module name for files under a ``src/`` root (else None)."""
    parts = path.parts
    if "src" not in parts:
        return None
    rel = parts[parts.index("src") + 1 :]
    if not rel or not rel[-1].endswith(".py"):
        return None
    pieces = list(rel[:-1])
    stem = rel[-1][: -len(".py")]
    if stem != "__init__":
        pieces.append(stem)
    return ".".join(pieces) if pieces else None


def _is_test_file(path: Path) -> bool:
    name = path.name
    return (
        "tests" in path.parts
        or name.startswith("test_")
        or name == "conftest.py"
    )


def build_context(path: Path, source: str) -> FileContext:
    """Parse ``source`` and classify ``path`` for the rules."""
    tree = ast.parse(source, filename=str(path))
    return FileContext(
        path=str(path),
        source=source,
        tree=tree,
        is_test=_is_test_file(path),
        module=_module_name(path),
        suppressions=_parse_suppressions(source),
    )


#: Rules that may never be suppressed: the suppression audit itself (a
#: suppressible audit could hide its own findings).
UNSUPPRESSABLE = frozenset({"R017"})


def _is_suppressed(ctx: FileContext, violation: Violation) -> bool:
    if violation.code in UNSUPPRESSABLE:
        return False
    for supp in ctx.suppressions:
        if (
            supp.line == violation.line
            and supp.active
            and supp.matches(violation.code)
        ):
            supp.used = True
            return True
    return False


def lint_source(
    source: str,
    path: str | Path = "<string>",
    rules: Sequence[object] | None = None,
) -> list[Violation]:
    """Lint one in-memory source text; returns surviving violations.

    Raises :class:`SyntaxError` when the source does not parse — a file
    that cannot be parsed is a build problem, not a lint finding.
    """
    from tools.repro_lint.rules import ALL_RULES

    ctx = build_context(Path(path), source)
    active = ALL_RULES if rules is None else rules
    found: list[Violation] = []
    for rule in active:
        for violation in rule.check(ctx):  # type: ignore[attr-defined]
            if not _is_suppressed(ctx, violation):
                found.append(violation)
    found.sort(key=lambda v: (v.path, v.line, v.col, v.code))
    return found


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Yield ``.py`` files under the given files/directories, sorted."""
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                if not _SKIP_DIR_NAMES.intersection(sub.parts):
                    yield sub
        elif path.suffix == ".py":
            yield path
        else:
            raise FileNotFoundError(f"not a python file or directory: {path}")


def lint_paths(paths: Iterable[str | Path]) -> list[Violation]:
    """Lint every python file under ``paths``."""
    found: list[Violation] = []
    for file_path in iter_python_files(paths):
        found.extend(lint_source(file_path.read_text(), file_path))
    return found


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point: ``python -m tools.repro_lint src tests``."""
    args = list(sys.argv[1:] if argv is None else argv)
    if not args or any(a in ("-h", "--help") for a in args):
        print(__doc__, file=sys.stderr)
        print("usage: python -m tools.repro_lint PATH [PATH ...]", file=sys.stderr)
        return 0 if args else 2
    try:
        violations = lint_paths(args)
    except (FileNotFoundError, SyntaxError) as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return 2
    for violation in violations:
        print(violation.render())
    count = len(violations)
    if count:
        print(f"repro-lint: {count} violation(s)", file=sys.stderr)
        return 1
    return 0
