"""repro-lint — repo-specific AST lint rules for the P-TPMiner codebase.

The generic gates (ruff, mypy) cannot see *domain* invariants, so this
package checks the handful of repo-specific rules that keep the paper's
correctness arguments machine-enforced:

``R001``
    No direct ``Endpoint(...)`` construction outside
    ``repro.temporal.endpoint``. Endpoints must come from the canonical
    encoder (:func:`repro.temporal.endpoint.endpoint_sequence_of`,
    :meth:`EncodedDatabase.decode_token`, :meth:`Endpoint.parse`) or be
    derived from an existing endpoint (``._replace``), so canonical
    ordering and occurrence numbering cannot be violated by hand-built
    tokens. Test modules are exempt (fixtures legitimately build raw
    endpoints to probe validation).

``R002``
    No mutable default arguments (``def f(x=[])`` and friends), anywhere.

``R003``
    Every public function, class, and public method in ``src/repro`` has
    complete type annotations (parameters and return) and a docstring.
    Dunder methods are exempt.

``R004``
    Every module in ``src/repro`` defines ``__all__``, every public
    top-level function/class appears in it, and every exported name is
    actually defined in the module.

``R005``
    No wall-clock ``time.time()`` in core mining code paths
    (``repro.core``, ``repro.temporal``) — timing belongs to the harness
    and to miner-boundary accounting (``time.perf_counter``).

Any rule is suppressible on a given line with a trailing comment::

    endpoint = Endpoint("A", 1, START)  # repro-lint: ignore[R001]

``# repro-lint: ignore`` (no code) suppresses every rule on that line;
``ignore[R001,R003]`` suppresses the listed codes only. The comment must
sit on the line the violation is reported at (the ``def``/call line).

Run as ``python -m tools.repro_lint src tests`` — exit status 0 means
clean, 1 means violations (printed one per line), 2 means usage error.
"""

from __future__ import annotations

from tools.repro_lint.engine import (
    FileContext,
    Violation,
    lint_paths,
    lint_source,
    main,
)
from tools.repro_lint.rules import ALL_RULES, Rule

__all__ = [
    "ALL_RULES",
    "FileContext",
    "Rule",
    "Violation",
    "lint_paths",
    "lint_source",
    "main",
]
