"""repro-lint — repo-specific static analysis for the P-TPMiner codebase.

The generic gates (ruff, mypy) cannot see *domain* invariants, so this
package checks the rules that keep the paper's correctness arguments
machine-enforced. Two layers:

**Per-file rules (R001–R009)** — one ``FileContext`` at a time:
``R001`` no hand-built ``Endpoint(...)`` outside the canonical encoder;
``R002`` no mutable default arguments; ``R003`` public ``src/repro``
API is fully annotated and documented; ``R004`` ``__all__`` present and
consistent; ``R005`` no wall-clock time in core mining code; ``R006``
no raw ``time`` imports in ``repro.core``/``repro.obs`` (the clock seam
owns it); ``R007`` no profiling imports in mining code; ``R008``
process pools only in ``repro.engine``; ``R009`` multiprocessing
primitives only in the telemetry bus and the engine.

**Project-graph passes (R010–R017)** — deep mode (``--deep``,
``make lint-deep``), over a module/import/call graph of ``src/repro``:
``R010`` unordered iteration feeding ordered emission on merge paths;
``R011`` process-global ``random`` use; ``R012`` ``id()``/``hash()`` in
sort keys; ``R013`` order-sensitive accumulation over unordered sources
on merge paths; ``R014`` engine-boundary shippability (frozen picklable
tasks, module-level worker callables, no hidden worker state); ``R015``
plan-cache consumers must be inferred-pure readers; ``R016`` mining
entry points carry contract or span coverage; ``R017`` suppression
hygiene (unused/expired/malformed/unscoped).

Suppressions are rule-scoped and may expire::

    total += x  # repro-lint: R013 until=PR8
    ep = Endpoint("A", 1, START)  # repro-lint: ignore[R001]   (legacy)

``until=PRn`` expires when :data:`CURRENT_PR` reaches ``n``; an ISO
date (``until=2026-12-31``) expires the day after. Expired or malformed
suppressions stop suppressing and are reported by R017. See
``docs/static-analysis.md`` for the full catalog and policy.

Run ``python -m tools.repro_lint src tests`` for the fast per-file
gate, or add ``--deep --format text|json|sarif`` for the full analyzer.
Exit status 0 means clean, 1 means findings, 2 means usage error.
"""

from __future__ import annotations

from tools.repro_lint.engine import (
    CURRENT_PR,
    FileContext,
    Suppression,
    Violation,
    lint_paths,
    lint_source,
    main,
)
from tools.repro_lint.rules import ALL_RULES, Rule

__all__ = [
    "ALL_RULES",
    "CURRENT_PR",
    "FileContext",
    "Rule",
    "Suppression",
    "Violation",
    "lint_paths",
    "lint_source",
    "main",
]
