"""Per-function dataflow facts for the analyzer passes.

Two families of facts, both computed from a single walk over a function
body (nested defs included, with parameter shadowing respected):

* **Effects** — which parameters the function mutates directly (attribute
  / subscript stores, ``del``, mutating method calls), which module-level
  names it writes, and simple intra-function aliases (``m = param``), so
  the purity pass can chase mutations through local renames.
* **Unordered sources** — expressions whose iteration order is not a
  semantic guarantee: set displays/comprehensions, ``set()`` /
  ``frozenset()`` calls, and dict views (``.keys()`` / ``.values()`` /
  ``.items()`` — insertion-ordered, but the insertion order of merge-path
  dicts depends on shard arrival order). ``sorted(...)`` sanitizes a
  source; names assigned from unordered expressions (or from
  list/generator comprehensions over them) are tracked as *derived*
  unordered, so ``busies = [x for x in s]; sum(busies)`` is still caught.

Everything is a best-effort static approximation: attribute chains
longer than one hop, reassignment through containers, and cross-function
aliasing are out of scope and documented as such in
``docs/static-analysis.md``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

__all__ = [
    "FunctionEffects",
    "MutationSite",
    "MUTATING_METHODS",
    "effects_of",
    "iter_statements",
    "unordered_reason",
    "unordered_names",
]

#: Method names that mutate their receiver on builtin containers (and,
#: by convention, on anything else — a project method named ``update``
#: that is pure should be renamed, not special-cased).
MUTATING_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "remove",
        "discard",
        "clear",
        "sort",
        "reverse",
        "appendleft",
        "extendleft",
        "popleft",
        "write",
        "writelines",
    }
)

#: Call names producing unordered collections.
_UNORDERED_FACTORIES = frozenset({"set", "frozenset"})

#: Attribute calls producing dict views.
_DICT_VIEW_METHODS = frozenset({"keys", "values", "items"})

#: Call names whose result preserves the iteration order of their input
#: (so a name assigned from them over an unordered source stays tainted).
_ORDER_PRESERVING = frozenset({"list", "tuple", "reversed", "iter"})


@dataclass(frozen=True)
class MutationSite:
    """One direct mutation of a tracked name."""

    name: str
    node: ast.AST
    why: str


@dataclass
class FunctionEffects:
    """Direct effects of one function body."""

    #: tracked-name -> mutation sites (parameters and their aliases are
    #: folded back to the *parameter* name).
    mutated_params: dict[str, list[MutationSite]] = field(
        default_factory=dict
    )
    #: (module-level or ``global``-declared name, store site) pairs.
    global_writes: list[tuple[str, ast.AST]] = field(default_factory=list)
    #: names declared ``global`` anywhere in the body.
    global_decls: set[str] = field(default_factory=set)


def _base_name(expr: ast.expr) -> str | None:
    """The root ``Name`` of an attribute/subscript chain, if simple."""
    while isinstance(expr, (ast.Attribute, ast.Subscript)):
        expr = expr.value
    if isinstance(expr, ast.Name):
        return expr.id
    return None


def iter_statements(body: list[ast.stmt]) -> list[ast.stmt]:
    """Statements of ``body`` in source order, recursing into blocks.

    Nested function/class definitions are returned as single statements
    (their bodies are *not* flattened) so callers can apply shadowing
    rules before descending.
    """
    out: list[ast.stmt] = []
    for stmt in body:
        out.append(stmt)
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        for block in (
            getattr(stmt, "body", None),
            getattr(stmt, "orelse", None),
            getattr(stmt, "finalbody", None),
        ):
            if isinstance(block, list):
                out.extend(iter_statements(block))
        for handler in getattr(stmt, "handlers", []) or []:
            out.extend(iter_statements(handler.body))
    return out


def _shadowed(
    node: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda, name: str
) -> bool:
    args = node.args
    return name in {
        a.arg
        for a in (
            list(args.posonlyargs)
            + list(args.args)
            + list(args.kwonlyargs)
            + [x for x in (args.vararg, args.kwarg) if x is not None]
        )
    }


def _walk_unshadowed(
    root: ast.AST, tracked: set[str]
) -> list[tuple[ast.AST, set[str]]]:
    """Walk ``root`` yielding ``(node, live_tracked_names)``.

    Descending into a nested function drops the names its parameters
    shadow — a mutation of a shadowed name belongs to the inner scope.
    """
    out: list[tuple[ast.AST, set[str]]] = []
    stack: list[tuple[ast.AST, set[str]]] = [(root, tracked)]
    while stack:
        node, live = stack.pop()
        out.append((node, live))
        for child in ast.iter_child_nodes(node):
            child_live = live
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                child_live = {
                    n for n in live if not _shadowed(child, n)
                }
            stack.append((child, child_live))
    return out


def effects_of(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
    *,
    module_level_names: set[str] | None = None,
) -> FunctionEffects:
    """Compute :class:`FunctionEffects` for one function definition."""
    args = node.args
    params = {
        a.arg
        for a in (
            list(args.posonlyargs)
            + list(args.args)
            + list(args.kwonlyargs)
            + [x for x in (args.vararg, args.kwarg) if x is not None]
        )
    }
    module_names = module_level_names or set()
    effects = FunctionEffects()

    # Pass 1: aliases (alias -> param) from simple `m = param` binds, and
    # names rebound to something else (which kills the alias).
    aliases: dict[str, str] = {}
    for stmt in iter_statements(node.body):
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if isinstance(target, ast.Name):
                if (
                    isinstance(stmt.value, ast.Name)
                    and stmt.value.id in params
                ):
                    aliases[target.id] = stmt.value.id
                else:
                    aliases.pop(target.id, None)

    def canonical(name: str) -> str:
        return aliases.get(name, name)

    def record(name: str, site: ast.AST, why: str) -> None:
        root = canonical(name)
        if root in params:
            effects.mutated_params.setdefault(root, []).append(
                MutationSite(root, site, why)
            )
        elif name in module_names or name in effects.global_decls:
            effects.global_writes.append((name, site))

    tracked = params | set(aliases) | module_names

    for item, live in _walk_unshadowed(node, set(tracked)):
        if isinstance(item, ast.Global):
            effects.global_decls.update(item.names)
            continue
        if isinstance(item, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                item.targets
                if isinstance(item, ast.Assign)
                else [item.target]
            )
            for target in targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    base = _base_name(target)
                    if base is not None and base in live:
                        kind = (
                            "attribute store"
                            if isinstance(target, ast.Attribute)
                            else "item store"
                        )
                        record(base, item, kind)
                elif isinstance(target, ast.Name):
                    if isinstance(item, ast.AugAssign) and (
                        target.id in effects.global_decls
                        or (
                            target.id in module_names
                            and target.id not in params
                        )
                    ):
                        record(target.id, item, "augmented store")
                    elif target.id in effects.global_decls:
                        record(target.id, item, "global rebind")
        elif isinstance(item, ast.Delete):
            for target in item.targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    base = _base_name(target)
                    if base is not None and base in live:
                        record(base, item, "del")
        elif isinstance(item, ast.Call):
            func = item.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in MUTATING_METHODS
            ):
                base = _base_name(func.value)
                if base is not None and base in live:
                    record(base, item, f".{func.attr}() call")
    return effects


# ----------------------------------------------------------------------
# unordered-source analysis
# ----------------------------------------------------------------------
def _call_name(call: ast.Call) -> str | None:
    if isinstance(call.func, ast.Name):
        return call.func.id
    return None


def unordered_reason(
    expr: ast.expr, derived: set[str] | None = None
) -> str | None:
    """Why ``expr`` iterates in no guaranteed order (``None`` if ordered).

    ``derived`` is the set of local names known to hold unordered-derived
    sequences (see :func:`unordered_names`). ``sorted(...)`` (and
    ``min``/``max``, which are order-independent) never come back
    unordered.
    """
    names = derived or set()
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return "set literal/comprehension"
    if isinstance(expr, ast.Call):
        name = _call_name(expr)
        if name in _UNORDERED_FACTORIES:
            return f"{name}(...) result"
        if name in _ORDER_PRESERVING and expr.args:
            inner = unordered_reason(expr.args[0], names)
            if inner is not None:
                return inner
        if (
            isinstance(expr.func, ast.Attribute)
            and expr.func.attr in _DICT_VIEW_METHODS
            and not expr.args
        ):
            return f".{expr.func.attr}() dict view"
    if isinstance(expr, ast.Name) and expr.id in names:
        return f"{expr.id!r} (derived from an unordered source)"
    if isinstance(expr, (ast.ListComp, ast.GeneratorExp)):
        for gen in expr.generators:
            inner = unordered_reason(gen.iter, names)
            if inner is not None:
                return inner
    return None


def unordered_names(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
) -> set[str]:
    """Names assigned from unordered (or unordered-derived) expressions.

    One forward scan in statement order; a later rebind from an ordered
    expression removes the taint. Comprehension results over unordered
    iterables count as derived (the element order still reflects the
    unordered source).
    """
    tainted: set[str] = set()
    for stmt in iter_statements(node.body):
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if isinstance(target, ast.Name):
                if unordered_reason(stmt.value, tainted) is not None:
                    tainted.add(target.id)
                else:
                    tainted.discard(target.id)
    return tainted
