"""Repo-local developer tooling.

Packages under ``tools/`` support development of the ``repro`` library
(custom lint rules, CI helpers) and are not shipped with the package.
"""
