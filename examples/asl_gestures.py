#!/usr/bin/env python
"""Scenario: discovering grammatical structure in ASL utterances.

The motivating application from the interval-mining literature: in
American Sign Language, grammatical fields (negation, wh-question,
topic) are *intervals* that overlap the sign intervals they scope over,
so their regularities are arrangements — invisible to point-based
sequence mining.

This example mines the simulated ASL corpus (see
``repro.datagen.asl`` for how it mirrors the real corpora's structure),
then inspects the linguistically meaningful patterns: which non-manual
markers co-occur with which fields, and in what Allen configuration.

Run:  python examples/asl_gestures.py
"""

import repro
from repro.datagen import generate_asl

db = generate_asl(800, seed=7)
print(f"corpus: {db}")
print(f"stats:  {db.stats().as_row()}\n")

# ---------------------------------------------------------------------------
# Mine at 8% support — low enough to catch the per-archetype grammar.
# ---------------------------------------------------------------------------
result = repro.PTPMiner(min_sup=0.08).mine(db)
print(f"{len(result.patterns)} frequent patterns "
      f"({result.elapsed:.2f}s)\n")

# ---------------------------------------------------------------------------
# Focus on grammar: patterns joining a field with a sign or marker.
# ---------------------------------------------------------------------------
FIELDS = {"negation", "wh-question", "topic", "conditional"}


def is_grammar_pattern(pattern: repro.TemporalPattern) -> bool:
    labels = pattern.alphabet
    return bool(labels & FIELDS) and len(labels) >= 2


grammar = [
    item for item in repro.filter_closed(result).patterns
    if is_grammar_pattern(item.pattern)
]
print(f"grammatical arrangements ({len(grammar)}):")
for item in grammar[:10]:
    print(f"\n  support={item.support} "
          f"({item.relative_support(len(db)):.0%})  {item.pattern}")
    for line in item.pattern.allen_description():
        print(f"    {line}")

# ---------------------------------------------------------------------------
# Locate the concrete evidence: which events realize a pattern?
# ---------------------------------------------------------------------------
negation_scope = repro.TemporalPattern.parse(
    "(negation+) (NOT+) (NOT-) (negation-)"
)
witness = next(s for s in db if negation_scope.contained_in(s))
embedding = negation_scope.embeddings_in(witness, limit=1)[0]
print("\nconcrete witness utterance for 'negation scopes NOT':")
for (label, occ), event in sorted(embedding.items()):
    print(f"  {label}#{occ} -> {event}")

# ---------------------------------------------------------------------------
# The linguistically expected findings, verified explicitly.
# ---------------------------------------------------------------------------
expected = {
    "negation scopes NOT":
        "(negation+) (NOT+) (NOT-) (negation-)",
    "head-shake co-articulated with negation":
        "(negation+) (head-shake+) (negation-) (head-shake-)",
}
print("\nexpected grammar checks:")
for name, text in expected.items():
    pattern = repro.TemporalPattern.parse(text)
    support = pattern.support_in(db)
    print(f"  {name}: support {support}/{len(db)} "
          f"({support / len(db):.0%})")
    assert support > 0.05 * len(db), name
print("all expected grammatical arrangements were rediscovered")
