#!/usr/bin/env python
"""Scenario: borrowing-behaviour analytics over library loan intervals.

Loan records are the textbook interval data: each loan spans a period,
and patron behaviour shows up as *arrangements* — a semester textbook
loan that CONTAINS short reference loans, exam-prep loans that are MET-BY
post-exam novels. This example mines the simulated circulation data,
compares the full and closed pattern sets, and demonstrates the maximal
filter for dashboard-sized summaries.

Run:  python examples/library_loans.py
"""

import repro
from repro.datagen import generate_library

db = generate_library(1200, seed=31)
print(f"patrons: {db}")
print(f"stats:   {db.stats().as_row()}\n")

result = repro.PTPMiner(min_sup=0.15).mine(db)
closed = repro.filter_closed(result)
maximal = repro.filter_maximal(result)
print(
    f"frequent patterns: {len(result.patterns)}   "
    f"closed: {len(closed.patterns)}   maximal: {len(maximal.patterns)}\n"
)

print("maximal behaviour summaries:")
for item in maximal.patterns:
    if item.pattern.size < 2:
        continue
    print(f"\n  {item.relative_support(len(db)):.0%} of patrons: "
          f"{item.pattern}")
    for line in item.pattern.allen_description():
        print(f"    {line}")

# ---------------------------------------------------------------------------
# A concrete retention question: do exam crunchers come back for fun?
# ---------------------------------------------------------------------------
crunch_then_relax = repro.TemporalPattern.parse(
    "(exam-prep+) (exam-prep- novel+) (novel-)"
)
support = crunch_then_relax.support_in(db)
print(
    f"\n'exam-prep meets novel' (return the prep book, immediately borrow "
    f"a novel): {support}/{len(db)} patrons ({support / len(db):.0%})"
)

nested = repro.TemporalPattern.parse(
    "(textbook+) (reference+) (reference-) (textbook-)"
)
print(
    f"'reference loans nested inside a textbook loan': "
    f"{nested.support_in(db)}/{len(db)} patrons"
)
assert support > 0, "the planted exam-crunch motif should be present"
assert nested.support_in(db) > 0.2 * len(db)
