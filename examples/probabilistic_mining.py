#!/usr/bin/env python
"""Scenario: mining uncertain interval data with expected support.

Interval events often come from detectors (activity recognition, NLP
annotation, epoch discretizers) that attach a *confidence* to each
record. The tuple-uncertainty model keeps that information: each
e-sequence exists with a probability, and patterns are ranked by
expected support over the possible worlds.

This example builds an uncertain version of the ASL corpus (annotation
confidence decays for long utterances), mines it with the probabilistic
P-TPMiner, and contrasts the expected-support ranking against the naive
approaches of (a) ignoring the probabilities and (b) keeping only
high-confidence sequences.

Run:  python examples/probabilistic_mining.py
"""

import repro
from repro.datagen import generate_asl

base = generate_asl(800, seed=7)

# Annotation confidence: long utterances are harder to annotate.
probabilities = [
    max(0.35, 1.0 - 0.07 * len(seq)) for seq in base
]
udb = repro.UncertainESequenceDatabase.from_database(base, probabilities)
print(f"uncertain corpus: {udb}\n")

THRESHOLD = 0.08 * len(base)  # same absolute bar for all three methods

# ---------------------------------------------------------------------------
# 1. Expected-support mining (the principled answer).
# ---------------------------------------------------------------------------
expected = repro.ProbabilisticTPMiner(min_esup=THRESHOLD).mine(udb)
print(f"expected-support mining: {len(expected.patterns)} patterns "
      f"({expected.elapsed:.2f}s)")

# ---------------------------------------------------------------------------
# 2. Ignoring uncertainty entirely (overcounts dubious sequences).
# ---------------------------------------------------------------------------
naive = repro.PTPMiner(min_sup=int(THRESHOLD)).mine(base)
print(f"certainty-blind mining:  {len(naive.patterns)} patterns")

# ---------------------------------------------------------------------------
# 3. Hard-thresholding the data (discards partial evidence).
# ---------------------------------------------------------------------------
confident = repro.ESequenceDatabase(
    [seq for seq, p in zip(base, probabilities) if p >= 0.8],
    name="confident-only",
)
hard = repro.PTPMiner(min_sup=int(THRESHOLD)).mine(confident)
print(f"high-confidence only:    {len(hard.patterns)} patterns "
      f"(from {len(confident)} of {len(base)} sequences)\n")

# ---------------------------------------------------------------------------
# Expected support never exceeds raw support; show the re-ranking.
# ---------------------------------------------------------------------------
naive_supports = naive.as_dict()
print("largest confidence discounts (raw support -> expected support):")
discounted = [
    (naive_supports[item.pattern] - item.support, item)
    for item in expected.patterns
    if item.pattern in naive_supports
]
discounted.sort(key=lambda pair: -pair[0])
for discount, item in discounted[:6]:
    raw = naive_supports[item.pattern]
    print(f"  {raw:>5} -> {item.support:7.1f}  (-{discount:5.1f})  "
          f"{item.pattern}")

for item in expected.patterns:
    if item.pattern in naive_supports:
        assert item.support <= naive_supports[item.pattern] + 1e-9
print("\ninvariant holds: expected support <= raw support for every pattern")
