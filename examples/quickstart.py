#!/usr/bin/env python
"""Quickstart: mine temporal patterns from a small clinical database.

Walks the whole public API surface in five minutes:

1. build an e-sequence database from raw ``(start, finish, label)`` rows;
2. mine frequent temporal patterns with P-TPMiner;
3. read patterns back as Allen relations;
4. condense the result with the closed-pattern filter;
5. save and reload everything.

Run:  python examples/quickstart.py
"""

import tempfile
from pathlib import Path

import repro

# ---------------------------------------------------------------------------
# 1. A tiny clinical database: each row is one patient's event intervals.
# ---------------------------------------------------------------------------
patients = [
    # fever contains rash, then a headache afterwards
    [(0, 10, "fever"), (2, 6, "rash"), (12, 15, "headache")],
    [(0, 8, "fever"), (3, 5, "rash"), (9, 12, "headache")],
    [(0, 9, "fever"), (2, 7, "rash")],
    # a different presentation: fever meets rash
    [(0, 6, "fever"), (6, 9, "rash")],
    # rash only
    [(0, 4, "rash")],
]
db = repro.ESequenceDatabase.from_event_lists(patients, name="clinic")
print(f"database: {db}")
print(f"stats:    {db.stats().as_row()}\n")

# ---------------------------------------------------------------------------
# 2. Mine: patterns supported by at least 40% of patients.
# ---------------------------------------------------------------------------
result = repro.mine(db, min_sup=0.4)
print(f"{result.miner} found {len(result.patterns)} patterns "
      f"in {result.elapsed * 1000:.1f} ms "
      f"(threshold {result.threshold:g} of {result.db_size} patients)\n")

for item in result.patterns:
    print(f"  support={item.support}  {item.pattern}")

# ---------------------------------------------------------------------------
# 3. Interpret the most interesting pattern as Allen relations.
# ---------------------------------------------------------------------------
nested = repro.TemporalPattern.parse("(fever+) (rash+) (rash-) (fever-)")
print(f"\npattern {nested} reads as:")
for line in nested.allen_description():
    print(f"  {line}")
print(f"supported by {nested.support_in(db)} of {len(db)} patients")

# ---------------------------------------------------------------------------
# 3b. Visualize an arrangement as a timeline.
# ---------------------------------------------------------------------------
from repro.harness import render_pattern

print("\nthe arrangement, drawn:")
print(render_pattern(nested, width=32, label_width=8))

# ---------------------------------------------------------------------------
# 3c. Temporal rules: how predictive is the smaller arrangement?
# ---------------------------------------------------------------------------
rules = repro.generate_rules(result, min_confidence=0.5)
print("\ntemporal rules (confidence >= 0.5):")
for rule in rules[:4]:
    print(f"  {rule}")

# ---------------------------------------------------------------------------
# 4. Closed patterns: the lossless summary.
# ---------------------------------------------------------------------------
closed = repro.filter_closed(result)
print(f"\nclosed patterns ({len(closed.patterns)} of "
      f"{len(result.patterns)}):")
for item in closed.patterns:
    print(f"  support={item.support}  {item.pattern}")

# ---------------------------------------------------------------------------
# 5. Save and reload.
# ---------------------------------------------------------------------------
from repro.io import read_patterns, write_database, write_patterns

with tempfile.TemporaryDirectory() as tmp:
    db_path = Path(tmp) / "clinic.txt"
    pat_path = Path(tmp) / "patterns.txt"
    write_database(db, db_path)
    write_patterns(closed.patterns, pat_path)
    print(f"\nwrote {db_path.name} ({db_path.stat().st_size} bytes) and "
          f"{pat_path.name} ({pat_path.stat().st_size} bytes)")
    reloaded = read_patterns(pat_path)
    assert reloaded == closed.patterns
    print("reloaded patterns match — round trip OK")
