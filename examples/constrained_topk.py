#!/usr/bin/env python
"""Scenario: time-constrained and top-k mining on loan data.

Plain temporal patterns are arrangement-only: "exam-prep meets novel"
matches whether the two loans are adjacent weeks or adjacent years.
The ``max_span`` constraint re-introduces duration semantics — only
embeddings that fit a time window count — and ``mine_top_k`` answers
the analyst's actual question ("what are the ten big behaviours?")
without threshold guessing.

Run:  python examples/constrained_topk.py
"""

import repro
from repro.datagen import generate_library

db = generate_library(1000, seed=31)
print(f"patrons: {db}\n")

# ---------------------------------------------------------------------------
# 1. Top-k: the ten strongest multi-event behaviours, no threshold tuning.
# ---------------------------------------------------------------------------
top = repro.PTPMiner().mine_top_k(db, 10, min_size=2)
print("top 10 multi-event behaviours:")
for rank, item in enumerate(top.patterns, start=1):
    print(f"  {rank:>2}. {item.relative_support(len(db)):6.1%}  "
          f"{item.pattern}")
print(f"(dynamic threshold settled at support "
      f"{top.threshold:g}; {top.counters.candidates_frequent} "
      f"frequent candidates explored)\n")

# ---------------------------------------------------------------------------
# 2. The same mine, constrained to a 60-day window.
#    Semester-long nestings survive; cross-season coincidences vanish.
# ---------------------------------------------------------------------------
for span in (None, 120, 60, 30):
    miner = repro.PTPMiner(min_sup=0.15, max_span=span)
    result = miner.mine(db)
    label = "unconstrained" if span is None else f"max_span={span}d"
    multi = [p for p in result.patterns if p.pattern.size >= 2]
    print(f"  {label:>16}: {len(result.patterns):>3} patterns "
          f"({len(multi)} multi-event)")

# ---------------------------------------------------------------------------
# 3. A concrete case: the exam-crunch behaviour is a *tight* pattern —
#    it survives a 45-day window; the semester nesting does not.
# ---------------------------------------------------------------------------
crunch = repro.TemporalPattern.parse(
    "(exam-prep+) (exam-prep- novel+) (novel-)"
)
nested = repro.TemporalPattern.parse(
    "(textbook+) (reference+) (reference-) (textbook-)"
)
tight = repro.PTPMiner(min_sup=0.05, max_span=45).mine(db).pattern_set()
free = repro.PTPMiner(min_sup=0.05).mine(db).pattern_set()

print(f"\nwith a 45-day window:")
print(f"  exam-prep meets novel   : "
      f"{'kept' if crunch in tight else 'dropped'}")
print(f"  reference inside textbook: "
      f"{'kept' if nested in tight else 'dropped'} "
      f"(needs the whole semester)")
assert crunch in free and nested in free
assert crunch in tight and nested not in tight
print("\ntime constraints separate tight behaviours from slow ones — OK")
