#!/usr/bin/env python
"""Scenario: co-movement and lead-lag discovery in stock epoch data.

Price series are discretized into labelled epochs (maximal up/down/flat
runs per ticker); each trading window is one e-sequence. Temporal
patterns then read directly as market structure: EQUAL/OVERLAPS
arrangements are co-movement, BEFORE/OVERLAPS with a lag are lead-lag,
and opposite-direction EQUAL arrangements expose inverse products.

Run:  python examples/stock_epochs.py
"""

from collections import defaultdict

import repro
from repro.datagen import generate_stock

db = generate_stock(1000, seed=47)
print(f"windows: {db}")
print(f"stats:   {db.stats().as_row()}\n")

result = repro.PTPMiner(min_sup=0.1, max_size=2).mine(db)
print(f"{len(result.patterns)} frequent 1-2 event patterns "
      f"({result.elapsed:.2f}s)\n")

# ---------------------------------------------------------------------------
# Classify every 2-event pattern by its Allen relation.
# ---------------------------------------------------------------------------
by_relation: dict[str, list] = defaultdict(list)
for item in result.patterns:
    if item.pattern.size != 2:
        continue
    (relation,) = item.pattern.allen_description()
    kind = relation.split(" ", 2)[1]
    by_relation[kind].append((item.support, relation))

for kind in sorted(by_relation):
    entries = sorted(by_relation[kind], reverse=True)
    print(f"{kind} ({len(entries)} patterns):")
    for support, relation in entries[:4]:
        print(f"  {support:>4}  {relation}")
    print()

# ---------------------------------------------------------------------------
# The structural findings a trader would expect.
# ---------------------------------------------------------------------------
print("market-structure checks:")

co_move = repro.TemporalPattern.parse(
    "(INDEX-up+ TECH1-up+) (INDEX-up- TECH1-up-)"
)
print(f"  TECH1 moves exactly with the index (EQUAL): "
      f"{co_move.support_in(db)} windows")

lead_lag = repro.TemporalPattern.parse(
    "(LEAD-up+) (FOLLOW-up+) (LEAD-up-) (FOLLOW-up-)"
)
print(f"  LEAD's rally overlaps into FOLLOW's (lead-lag): "
      f"{lead_lag.support_in(db)} windows")

inverse = repro.TemporalPattern.parse(
    "(INDEX-up+ VOLX-down+) (INDEX-up-) (VOLX-down-)"
)
hits = inverse.support_in(db)
print(f"  volatility product falls while the index rallies: "
      f"{hits} windows")

assert co_move.support_in(db) > 0.05 * len(db)
assert lead_lag.support_in(db) > 0.05 * len(db)
print("\nall planted market structures were rediscovered")
