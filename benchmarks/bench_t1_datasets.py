"""Experiment T1 — dataset statistics table.

Regenerates the evaluation's dataset-characteristics table (the paper's
"Table 1" slot): one row per workload with size, alphabet, sequence
length, duration, point-event and duplicate-label statistics.
"""

from benchmarks.conftest import write_report
from repro.harness.tables import render_table


def test_t1_dataset_statistics(
    benchmark, sparse_db, dense_db, scale_unit_db, hybrid_db, tiny_db,
    asl_db, library_db, stock_db, clinical_db,
):
    databases = [
        sparse_db, dense_db, scale_unit_db, hybrid_db, tiny_db,
        asl_db, library_db, stock_db, clinical_db,
    ]

    def build_rows():
        rows = []
        for db in databases:
            row = {"dataset": db.name}
            row.update(db.stats().as_row())
            rows.append(row)
        return rows

    rows = benchmark.pedantic(build_rows, rounds=1)
    table = render_table(rows, title="T1: dataset statistics")
    write_report("T1_datasets", table)
    assert len(rows) == 9
    assert all(row["sequences"] > 0 for row in rows)
