"""Experiment T3 — miner agreement (correctness cross-check table).

On the small workload, all five miners (including the brute-force
oracle) must return the identical pattern-to-support mapping. The table
reports each miner's runtime and candidate effort at equal output — the
sanity row the efficiency figures rest on.
"""

import pytest

from benchmarks.conftest import write_report
from repro.baselines import (
    BruteForceMiner,
    HDFSMiner,
    IEMiner,
    TPrefixSpanMiner,
)
from repro.core.ptpminer import PTPMiner
from repro.harness.tables import render_table

MIN_SUP = 0.2
_results = {}

MINERS = {
    "P-TPMiner": lambda: PTPMiner(MIN_SUP),
    "TPrefixSpan": lambda: TPrefixSpanMiner(MIN_SUP),
    "H-DFS": lambda: HDFSMiner(MIN_SUP),
    "IEMiner": lambda: IEMiner(MIN_SUP),
    "BruteForce": lambda: BruteForceMiner(MIN_SUP),
}


@pytest.mark.parametrize("miner_name", list(MINERS))
def test_t3_run_miner(benchmark, tiny_db, miner_name):
    miner = MINERS[miner_name]()
    result = benchmark.pedantic(lambda: miner.mine(tiny_db), rounds=1)
    _results[miner_name] = result


def test_t3_report(benchmark, tiny_db):
    def finalize():
        reference = _results["BruteForce"].as_dict()
        rows = []
        for name, result in _results.items():
            rows.append(
                {
                    "miner": name,
                    "patterns": len(result.patterns),
                    "agrees_with_oracle": result.as_dict() == reference,
                    "runtime_s": round(result.elapsed, 4),
                    "candidates": result.counters.candidates_considered,
                }
            )
        return rows

    rows = benchmark.pedantic(finalize, rounds=1)
    write_report(
        "T3_agreement",
        render_table(rows, title="T3: miner agreement (tiny workload)"),
    )
    assert all(row["agrees_with_oracle"] for row in rows)
