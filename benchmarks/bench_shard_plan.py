"""Shard-plan quality and overhead check on a skewed workload.

Answers the three questions the predictive shard planner is
accountable for, on a synthetic workload whose label skew concentrates
the search in a handful of heavy roots:

1. **Predicted balance** -- is the LPT assignment's predicted max/mean
   shard imbalance lower than round-robin's, both on the static
   forecast and on a ledger-calibrated one?
2. **Realized balance** -- does ``--shard-strategy predicted`` improve
   the *measured* imbalance? Realized shard load is the sum of the
   per-root wall times the cost collector measured in that run,
   grouped by the shard that mined each root -- the same instrument
   the calibration record uses. (The live-telemetry ``busy_s`` span is
   deliberately not used here: a shard whose only root finishes at the
   end publishes its first heartbeat then, so its span under-reads and
   the metric structurally penalizes single-heavy-root shards -- the
   exact deal LPT makes.)
3. **Correctness and overhead** -- are the predicted-strategy results
   bit-for-bit identical to the serial miner's, and does consuming a
   prebuilt plan stay within the repository's 3% interleaved A/B
   budget? (The disabled path differs from the round-robin arm by one
   per-run strategy branch, so the predicted arm bounds it from
   above; the one-off plan build is timed separately.)

Usage::

    PYTHONPATH=src python benchmarks/bench_shard_plan.py \
        --out benchmarks/results/SHARD_PLAN.md

Standalone (no pytest); run manually when the planner or the shard
deal changes, and commit the refreshed report.
"""

from __future__ import annotations

import argparse
import statistics
import tempfile
import time
from collections.abc import Sequence

from repro.core.config import MinerConfig
from repro.core.ptpminer import PTPMiner
from repro.datagen.synthetic import SyntheticConfig, SyntheticGenerator
from repro.engine import mine_sharded
from repro.obs import costmodel
from repro.obs import ledger as obs_ledger
from repro.obs import planner

# A dozen moderately skewed labels at three workers puts two heavy
# roots three positions apart in the canonical deal order, so the
# round-robin deal stacks them on one shard -- the failure mode the
# predictive strategy exists to avoid.
NUM_SEQUENCES = 300
NUM_LABELS = 12
LABEL_SKEW = 1.2
SEED = 7
MIN_SUP = 0.1
WORKERS = 3


def skewed_db():
    return SyntheticGenerator(
        SyntheticConfig(
            num_sequences=NUM_SEQUENCES,
            num_labels=NUM_LABELS,
            seed=SEED,
            label_skew=LABEL_SKEW,
        )
    ).generate()


def seed_ledger(db, config, ledger_dir) -> None:
    """One round-robin run with the cost collector on, appended to the
    ledger so the next plan is history-calibrated."""
    with costmodel.use_collector() as collector:
        result = mine_sharded(db, config, workers=WORKERS)
    obs_ledger.RunLedger(ledger_dir).append(
        obs_ledger.build_entry(
            dataset_digest=obs_ledger.dataset_digest(db),
            miner="ptpminer",
            min_sup=config.min_sup,
            mode=config.mode,
            workers=WORKERS,
            wall_s=0.0,
            patterns=len(result.patterns),
            counters=result.counters.as_dict(),
            cost_snapshot=collector.snapshot(),
        )
    )


def realized_imbalance(db, config, plan, strategy) -> float:
    """Mine under ``strategy`` with the cost collector on; group the
    measured per-root walls by the plan's shard lists."""
    kwargs = {}
    if strategy == "predicted":
        kwargs = {"shard_strategy": "predicted", "plan": plan}
    with costmodel.use_collector() as collector:
        mine_sharded(db, config, workers=WORKERS, **kwargs)
    walls = {
        name: entry["wall_s"]
        for name, entry in collector.snapshot()["roots"].items()
    }
    loads = [
        sum(walls.get(name, 0.0) for name in shard)
        for shard in plan["assignments"][strategy]["shards"]
    ]
    return planner.imbalance(loads)


def _time_mine(db, config, *, plan) -> float:
    # Serial executor: same sharding and merge code, no process-pool
    # startup noise, and the makespan is the total work either way --
    # so the A/B delta isolates the deal computation itself.
    t0 = time.perf_counter()
    if plan is not None:
        mine_sharded(
            db, config, workers=WORKERS, executor="serial",
            shard_strategy="predicted", plan=plan,
        )
    else:
        mine_sharded(db, config, workers=WORKERS, executor="serial")
    return time.perf_counter() - t0


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--pairs", type=int, default=7, help="number of A/B pairs"
    )
    parser.add_argument(
        "--reps", type=int, default=3,
        help="realized-imbalance repetitions per strategy",
    )
    parser.add_argument(
        "--out", default=None, help="write the markdown report here"
    )
    args = parser.parse_args(argv)

    db = skewed_db()
    config = MinerConfig(min_sup=MIN_SUP)
    lines = [
        "# Shard-plan report: skewed synthetic workload",
        "",
        f"Workload: {NUM_SEQUENCES} sequences, {NUM_LABELS} labels, "
        f"label skew {LABEL_SKEW}, seed {SEED}, min-sup {MIN_SUP}, "
        f"{WORKERS} workers (process executor).",
        "",
    ]

    with tempfile.TemporaryDirectory() as ledger_dir:
        # --- predicted imbalance: static, then ledger-calibrated ----
        static_plan = planner.build_plan(db, config, workers=WORKERS)
        seed_ledger(db, config, ledger_dir)
        calibrated_plan = planner.build_plan(
            db, config, workers=WORKERS, ledger_dir=ledger_dir
        )
        lines += ["## Predicted imbalance (max/mean shard load)", ""]
        lines += ["| forecast | roundrobin | predicted (LPT) |",
                  "|----------|-----------:|----------------:|"]
        for tag, plan in (
            ("static", static_plan), ("ledger-calibrated", calibrated_plan)
        ):
            rr = plan["assignments"]["roundrobin"]["predicted_imbalance"]
            lpt = plan["assignments"]["predicted"]["predicted_imbalance"]
            lines.append(f"| {tag} | {rr:.4f} | {lpt:.4f} |")
            assert lpt <= rr, (
                f"{tag}: LPT predicted imbalance {lpt} worse than "
                f"round-robin {rr}"
            )
        lines.append("")

        # --- realized imbalance (measured per-root walls by shard) --
        realized = {}
        for strategy in ("roundrobin", "predicted"):
            values = [
                realized_imbalance(db, config, calibrated_plan, strategy)
                for _ in range(args.reps)
            ]
            realized[strategy] = statistics.median(values)
        lines += [
            "## Realized imbalance (measured per-root walls by shard)",
            "",
            "| strategy | predicted | realized (median of "
            f"{args.reps}) |",
            "|----------|----------:|---------:|",
        ]
        for strategy, value in realized.items():
            pred = calibrated_plan["assignments"][strategy][
                "predicted_imbalance"
            ]
            lines.append(f"| {strategy} | {pred:.4f} | {value:.4f} |")
        improved = realized["predicted"] < realized["roundrobin"]
        lines += [
            "",
            "Realized imbalance "
            + ("improved" if improved else "did NOT improve")
            + " under the predicted strategy.",
            "",
        ]
        assert improved, (
            f"predicted strategy realized {realized['predicted']} vs "
            f"round-robin {realized['roundrobin']}"
        )

        # --- bit-for-bit identity -----------------------------------
        serial = PTPMiner.from_config(config).mine(db)
        predicted = mine_sharded(
            db, config, workers=WORKERS, shard_strategy="predicted",
            plan=calibrated_plan,
        )
        assert predicted.patterns == serial.patterns
        assert predicted.counters == serial.counters
        lines += [
            "## Correctness",
            "",
            f"Predicted-strategy results are bit-for-bit identical to "
            f"the serial miner's ({len(serial.patterns)} patterns, "
            f"all prune counters equal).",
            "",
        ]

        # --- interleaved A/B overhead -------------------------------
        t0 = time.perf_counter()
        overhead_plan = planner.build_plan(
            db, config, workers=WORKERS, ledger_dir=ledger_dir
        )
        plan_build_s = time.perf_counter() - t0
        _time_mine(db, config, plan=None)
        _time_mine(db, config, plan=overhead_plan)
        ratios = []
        pair_lines = []
        for pair in range(args.pairs):
            off = _time_mine(db, config, plan=None)
            on = _time_mine(db, config, plan=overhead_plan)
            ratios.append(on / off - 1.0)
            pair_lines.append(
                f"pair {pair}: roundrobin={off:.4f}s "
                f"predicted={on:.4f}s overhead={100 * ratios[-1]:+.2f}%"
            )
        median = statistics.median(ratios)
        lines += ["## Overhead (interleaved A/B)", "", "```"]
        lines += pair_lines
        lines += [
            f"median predicted-deal overhead: {100 * median:+.2f}%",
            f"one-off plan build (profile + ledger read + LPT): "
            f"{plan_build_s:.4f}s",
            "```",
            "",
            "Both arms mine the same workload on the serial executor "
            "(same sharding and merge code; the makespan is the total "
            "work either way, so the delta is purely the LPT deal "
            "versus the round-robin deal, free of process-pool "
            "startup noise). The disabled path differs from the "
            "round-robin arm by a single per-run strategy branch, so "
            "the median above bounds it against the 3% budget. The "
            "plan build itself runs once per invocation and is "
            "reported separately.",
        ]

    report = "\n".join(lines) + "\n"
    print(report)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(report)
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
