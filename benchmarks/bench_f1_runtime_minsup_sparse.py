"""Experiment F1 — runtime vs minimum support, sparse synthetic workload.

The headline efficiency figure: P-TPMiner against TPrefixSpan, H-DFS and
IEMiner on the sparse workload while the support threshold drops.
Expected shape (the paper's claim): P-TPMiner is fastest at every
threshold and the gap *widens* as support decreases; IEMiner's levelwise
candidate explosion prices it out of the lowest thresholds (it runs on a
reduced grid, as in the original evaluations where the slowest
competitors time out).
"""

import pytest

from benchmarks.conftest import write_report
from repro.baselines import HDFSMiner, IEMiner, TPrefixSpanMiner
from repro.core.ptpminer import PTPMiner
from repro.harness.runner import ExperimentRunner, MinerSpec

SUPPORTS = [0.10, 0.08, 0.06, 0.04]
IEMINER_SUPPORTS = [0.10, 0.08]

MINERS = {
    "P-TPMiner": lambda ms: PTPMiner(ms),
    "TPrefixSpan": lambda ms: TPrefixSpanMiner(ms),
    "H-DFS": lambda ms: HDFSMiner(ms),
    "IEMiner": lambda ms: IEMiner(ms),
}

_runner = ExperimentRunner("F1: runtime vs min_sup (sparse)")


@pytest.mark.parametrize("min_sup", SUPPORTS)
@pytest.mark.parametrize("miner_name", list(MINERS))
def test_f1_runtime(benchmark, sparse_db, miner_name, min_sup):
    if miner_name == "IEMiner" and min_sup not in IEMINER_SUPPORTS:
        pytest.skip("IEMiner's levelwise explosion is reported on the "
                    "reduced grid only (see DESIGN.md F1)")
    spec = MinerSpec(miner_name, MINERS[miner_name])

    def run():
        return _runner.run_point(sparse_db, min_sup, [spec])

    rows = benchmark.pedantic(run, rounds=1)
    benchmark.extra_info["patterns"] = rows[0]["patterns"]
    assert rows[0]["patterns"] > 0


def test_f1_report(benchmark, sparse_db):
    def finalize():
        result = _runner.result
        by_point = {}
        for row in result.rows:
            by_point.setdefault((row["miner"], row["min_sup"]), row)
        pattern_counts = {
            ms: row["patterns"]
            for (miner, ms), row in by_point.items()
            if miner == "P-TPMiner"
        }
        # Sanity: all miners found identical pattern counts per threshold.
        for (miner, ms), row in by_point.items():
            assert row["patterns"] == pattern_counts[ms], (miner, ms)
        text = result.table(
            ["miner", "min_sup", "runtime_s", "patterns",
             "candidates_considered", "nodes_expanded"]
        )
        text += "\n\n" + result.chart("runtime_s")
        return text

    text = benchmark.pedantic(finalize, rounds=1)
    write_report("F1_runtime_minsup_sparse", text)
    # Shape assertion: P-TPMiner strictly fastest at the lowest threshold.
    lowest = min(SUPPORTS)
    rows = [r for r in _runner.result.rows if r["min_sup"] == lowest]
    ptp = next(r for r in rows if r["miner"] == "P-TPMiner")
    for row in rows:
        if row["miner"] != "P-TPMiner":
            assert row["runtime_s"] > ptp["runtime_s"], row["miner"]
