"""Experiment F5 — pruning ablation.

The "effect of the proposed pruning techniques" figure: P-TPMiner with
each pruning disabled in turn, plus the all-on and all-off ends, on the
sparse workload. The per-rule counters are reported next to the
runtimes. Expected shape: every pruning reduces candidates considered;
the full configuration is the fastest; all-off approaches TPrefixSpan's
search effort (same tree, no cuts).
"""

import pytest

from benchmarks.conftest import write_report
from repro.core.pruning import PruningConfig
from repro.core.ptpminer import PTPMiner
from repro.harness.runner import ExperimentRunner, MinerSpec

MIN_SUP = 0.04

CONFIGS = {
    "all": PruningConfig.all(),
    "no-point": PruningConfig(point=False, pair=True, postfix=True),
    "no-pair": PruningConfig(point=True, pair=False, postfix=True),
    "no-postfix": PruningConfig(point=True, pair=True, postfix=False),
    "none": PruningConfig.none(),
}

_runner = ExperimentRunner("F5: pruning ablation", x_name="min_sup")


@pytest.mark.parametrize("config_name", list(CONFIGS))
def test_f5_ablation(benchmark, sparse_db, config_name):
    config = CONFIGS[config_name]
    spec = MinerSpec(
        f"P-TPMiner[{config_name}]",
        lambda ms, c=config: PTPMiner(ms, pruning=c),
    )

    def run():
        return _runner.run_point(sparse_db, MIN_SUP, [spec])

    rows = benchmark.pedantic(run, rounds=1)
    benchmark.extra_info["candidates"] = rows[0]["candidates_considered"]


def test_f5_report(benchmark, sparse_db):
    def finalize():
        return _runner.result.table(
            [
                "miner", "runtime_s", "patterns",
                "candidates_considered", "pruned_point_labels",
                "pruned_pair", "pruned_postfix_branches",
                "pruned_dead_states",
            ]
        )

    write_report("F5_pruning_ablation", benchmark.pedantic(
        finalize, rounds=1
    ))
    rows = {row["miner"]: row for row in _runner.result.rows}
    # All configurations agree on the answer.
    assert len({row["patterns"] for row in rows.values()}) == 1
    # The full configuration considers the fewest candidates.
    full = rows["P-TPMiner[all]"]
    bare = rows["P-TPMiner[none]"]
    assert full["candidates_considered"] <= bare["candidates_considered"]
    # Disabling pair pruning costs the most candidates on this workload.
    assert (
        rows["P-TPMiner[no-pair]"]["candidates_considered"]
        >= full["candidates_considered"]
    )
