"""Experiment F7 — the probabilistic extension.

Expected-support mining over an uncertain version of the scale-unit
workload (existence probabilities drawn deterministically per sequence)
against deterministic mining of the same data. Expected shape: identical
asymptotics — expected support is weighted support, so the probabilistic
miner's runtime tracks the deterministic miner's at every threshold, and
its pattern sets are supersets-filtered-by-expectation.
"""

import random

import pytest

from benchmarks.conftest import write_report
from repro.core.probabilistic import ProbabilisticTPMiner
from repro.core.ptpminer import PTPMiner
from repro.harness.runner import ExperimentRunner, MinerSpec
from repro.model.uncertain import UncertainESequenceDatabase

SUPPORTS = [0.10, 0.06]

_runner = ExperimentRunner("F7: probabilistic vs deterministic")


def _uncertain(db):
    rng = random.Random(99)
    probs = [0.5 + 0.5 * rng.random() for _ in range(len(db))]
    return UncertainESequenceDatabase.from_database(db, probs)


@pytest.mark.parametrize("min_sup", SUPPORTS)
@pytest.mark.parametrize("flavour", ["deterministic", "probabilistic"])
def test_f7_runtime(benchmark, scale_unit_db, flavour, min_sup):
    if flavour == "deterministic":
        spec = MinerSpec("P-TPMiner", lambda ms: PTPMiner(ms))
        db = scale_unit_db

        def run():
            return _runner.run_point(db, min_sup, [spec])

    else:
        udb = _uncertain(scale_unit_db)

        class _Adapter:
            """Runs at the same *absolute* threshold as the deterministic
            miner so the expected-support set is a provable subset."""

            def __init__(self, ms):
                self._miner = ProbabilisticTPMiner(
                    min_esup=ms * len(udb.db)
                )

            def mine(self, _db):
                return self._miner.mine(udb)

        spec = MinerSpec("P-TPMiner[prob]", _Adapter)

        def run():
            return _runner.run_point(scale_unit_db, min_sup, [spec])

    rows = benchmark.pedantic(run, rounds=1)
    benchmark.extra_info["patterns"] = rows[0]["patterns"]


def test_f7_report(benchmark, scale_unit_db):
    def finalize():
        return _runner.result.table(
            ["miner", "min_sup", "runtime_s", "patterns"]
        )

    write_report("F7_probabilistic", benchmark.pedantic(finalize, rounds=1))
    rows = _runner.result.rows
    for min_sup in SUPPORTS:
        det = next(
            r for r in rows
            if r["miner"] == "P-TPMiner" and r["min_sup"] == min_sup
        )
        prob = next(
            r for r in rows
            if r["miner"] == "P-TPMiner[prob]" and r["min_sup"] == min_sup
        )
        # Same search machinery: runtimes within a small constant factor.
        assert prob["runtime_s"] <= 3 * det["runtime_s"] + 0.2
        # Expectation-filtering can only shrink the frequent set at equal
        # relative thresholds (probabilities <= 1).
        assert prob["patterns"] <= det["patterns"]
