"""Experiment F6 — the second pattern type: HTP vs TP mining.

On the hybrid workload (30% point events), compares (a) HTP-mode mining
of the full data against (b) TP-mode mining of the point-stripped data.
Expected shape: HTP mode pays a modest overhead for the extra token kind
but discovers hybrid patterns that the pure-interval type cannot express
— the practicability argument for the paper's type-2 patterns.
"""

import pytest

from benchmarks.conftest import write_report
from repro.core.ptpminer import PTPMiner
from repro.harness.runner import ExperimentRunner, MinerSpec

SUPPORTS = [0.10, 0.06]

_runner = ExperimentRunner("F6: HTP vs TP")
_results = {}


@pytest.mark.parametrize("min_sup", SUPPORTS)
@pytest.mark.parametrize("mode", ["htp", "tp-stripped"])
def test_f6_modes(benchmark, hybrid_db, mode, min_sup):
    if mode == "htp":
        db = hybrid_db
        spec = MinerSpec("P-TPMiner[htp]", lambda ms: PTPMiner(ms, mode="htp"))
    else:
        db = hybrid_db.without_point_events()
        spec = MinerSpec("P-TPMiner[tp]", lambda ms: PTPMiner(ms, mode="tp"))

    def run():
        return _runner.run_point(db, min_sup, [spec])

    rows = benchmark.pedantic(run, rounds=1)
    if mode == "htp":
        result = PTPMiner(min_sup, mode="htp").mine(hybrid_db)
        _results[min_sup] = result
    benchmark.extra_info["patterns"] = rows[0]["patterns"]


def test_f6_report(benchmark, hybrid_db):
    def finalize():
        text = _runner.result.table(
            ["miner", "min_sup", "dataset", "runtime_s", "patterns"]
        )
        lines = [text, "", "hybrid-only patterns at each threshold:"]
        for min_sup, result in sorted(_results.items()):
            hybrid_patterns = [
                item for item in result.patterns if item.pattern.is_hybrid
            ]
            lines.append(
                f"  min_sup={min_sup}: {len(hybrid_patterns)} of "
                f"{len(result.patterns)} frequent patterns are hybrid"
            )
            for item in hybrid_patterns[:3]:
                lines.append(f"    {item.support:>4}  {item.pattern}")
        return "\n".join(lines)

    write_report("F6_hybrid", benchmark.pedantic(finalize, rounds=1))
    # Type-2 patterns exist: HTP finds patterns TP cannot express.
    for result in _results.values():
        assert any(item.pattern.is_hybrid for item in result.patterns)
