"""Experiment F3 — scalability: runtime vs database size.

The scale-unit workload is replicated 1x..8x (replication preserves the
pattern set and relative supports exactly, the standard methodology for
this axis) and mined at a fixed relative threshold. Expected shape:
P-TPMiner grows near-linearly in |D| — the abstract's "scalable" claim —
while the verification baselines grow with a steeper constant
(TPrefixSpan is included on the smaller sizes to show the diverging
slope; the slower baselines are priced out of this axis entirely, as in
the original evaluations).
"""

import pytest

from benchmarks.conftest import write_report
from repro.baselines import TPrefixSpanMiner
from repro.core.ptpminer import PTPMiner
from repro.harness.runner import ExperimentRunner, MinerSpec

FACTORS = [1, 2, 4, 8]
TPS_FACTORS = [1, 2, 4]
MIN_SUP = 0.06

_runner = ExperimentRunner("F3: runtime vs |D|", x_name="num_sequences")


@pytest.mark.parametrize("factor", FACTORS)
@pytest.mark.parametrize("miner_name", ["P-TPMiner", "TPrefixSpan"])
def test_f3_scalability(benchmark, scale_unit_db, miner_name, factor):
    if miner_name == "TPrefixSpan" and factor not in TPS_FACTORS:
        pytest.skip("TPrefixSpan reduced grid (verification cost)")
    db = scale_unit_db.replicated(factor)
    spec = MinerSpec(
        miner_name,
        (lambda _n: PTPMiner(MIN_SUP))
        if miner_name == "P-TPMiner"
        else (lambda _n: TPrefixSpanMiner(MIN_SUP)),
    )

    def run():
        return _runner.run_point(db, len(db), [spec])

    rows = benchmark.pedantic(run, rounds=1)
    benchmark.extra_info["patterns"] = rows[0]["patterns"]


def test_f3_report(benchmark, scale_unit_db):
    def finalize():
        text = _runner.result.table(
            ["miner", "num_sequences", "runtime_s", "patterns"]
        )
        text += "\n\n" + _runner.result.chart("runtime_s", log_y=False)
        return text

    write_report("F3_scalability", benchmark.pedantic(finalize, rounds=1))
    rows = [
        r for r in _runner.result.rows if r["miner"] == "P-TPMiner"
    ]
    rows.sort(key=lambda r: r["num_sequences"])
    # Pattern sets are size-invariant under replication.
    assert len({r["patterns"] for r in rows}) == 1
    # Near-linear growth, judged on the two largest sizes where timer
    # noise is negligible: doubling the data costs at most ~3x time.
    big, biggest = rows[-2], rows[-1]
    ratio = biggest["num_sequences"] / big["num_sequences"]
    assert biggest["runtime_s"] <= 1.5 * ratio * max(
        big["runtime_s"], 0.05
    )
