"""Disabled-path overhead check for the cost-attribution seam.

The per-root cost collector hooks the PTPMiner search loop through a
module-global seam (``repro.obs.costmodel.active_collector``). When no
collector is installed the hot path pays only a hoisted local load and
an ``is not None`` test per node, which must stay in the noise
(budget: <= 3% on wall time). This script measures that cost with
interleaved A/B pairs -- baseline (seam present, collector off) vs.
collecting (collector installed) -- so slow clock drift and thermal
ramp cancel out instead of biasing one arm.

Usage::

    PYTHONPATH=src python benchmarks/bench_cost_overhead.py --pairs 7

Prints per-pair timings and the median relative overhead. Standalone
(no pytest); run manually when the search hot path changes.
"""

from __future__ import annotations

import argparse
import statistics
import time
from collections.abc import Sequence

from repro.core.config import MinerConfig
from repro.core.ptpminer import PTPMiner
from repro.datagen import standard_dataset
from repro.obs import costmodel

NUM_SEQUENCES = 400
MIN_SUP = 0.08


def _time_mine(db, config, *, collect: bool) -> float:
    miner = PTPMiner.from_config(config)
    if collect:
        with costmodel.use_collector():
            t0 = time.perf_counter()
            miner.mine(db)
            return time.perf_counter() - t0
    t0 = time.perf_counter()
    miner.mine(db)
    return time.perf_counter() - t0


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--pairs", type=int, default=7, help="number of A/B pairs"
    )
    args = parser.parse_args(argv)

    db = standard_dataset("sparse", num_sequences=NUM_SEQUENCES)
    config = MinerConfig(min_sup=MIN_SUP)

    # Warm-up: one run of each arm so import/alloc effects hit neither.
    _time_mine(db, config, collect=False)
    _time_mine(db, config, collect=True)

    ratios = []
    for pair in range(args.pairs):
        off = _time_mine(db, config, collect=False)
        on = _time_mine(db, config, collect=True)
        ratios.append(on / off - 1.0)
        print(
            f"pair {pair}: off={off:.4f}s on={on:.4f}s "
            f"overhead={100 * ratios[-1]:+.2f}%"
        )

    median = statistics.median(ratios)
    print(f"median collector-ON overhead: {100 * median:+.2f}%")
    print(
        "note: the <=3% budget applies to the DISABLED path; the ON "
        "overhead above is the upper bound for it."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
