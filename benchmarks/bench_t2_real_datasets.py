"""Experiment T2 — practicability on real(-simulated) datasets.

The paper "applies the proposed method to real datasets to demonstrate
the practicability of discussed patterns". This experiment regenerates
that table: for each of the three domain datasets (ASL utterances,
library loans, stock epochs — see DESIGN.md § Substitutions), the
frequent-pattern counts at three thresholds plus the top domain patterns
rendered as Allen relations. The assertions pin the qualitative
deliverable: the planted domain motifs surface among the mined patterns.
"""

import pytest

from benchmarks.conftest import write_report
from repro.core.closed import filter_closed
from repro.core.ptpminer import PTPMiner
from repro.harness.tables import render_table

SUPPORTS = [0.3, 0.2, 0.1]
_rows = []
_top_patterns = {}


@pytest.mark.parametrize(
    "dataset", ["asl", "library", "stock", "clinical"]
)
def test_t2_mine_real_dataset(
    benchmark, dataset, asl_db, library_db, stock_db, clinical_db
):
    db = {
        "asl": asl_db,
        "library": library_db,
        "stock": stock_db,
        "clinical": clinical_db,
    }[dataset]

    def run():
        rows_here = []
        for min_sup in SUPPORTS:
            result = PTPMiner(min_sup).mine(db)
            closed = filter_closed(result)
            rows_here.append(
                {
                    "dataset": db.name,
                    "min_sup": min_sup,
                    "patterns": len(result.patterns),
                    "closed": len(closed.patterns),
                    "max_size": max(
                        (p.pattern.size for p in result.patterns),
                        default=0,
                    ),
                    "runtime_s": round(result.elapsed, 3),
                }
            )
            if min_sup == min(SUPPORTS):
                interesting = [
                    item
                    for item in closed.patterns
                    if item.pattern.size >= 2
                ]
                _top_patterns[db.name] = interesting[:4]
        return rows_here

    _rows.extend(benchmark.pedantic(run, rounds=1))


def test_t2_report(benchmark, asl_db, library_db, stock_db, clinical_db):
    def finalize():
        lines = [render_table(_rows, title="T2: real-data practicability")]
        lines.append("")
        lines.append("top multi-event closed patterns (min_sup=0.1):")
        for name, items in sorted(_top_patterns.items()):
            lines.append(f"  [{name}]")
            for item in items:
                lines.append(f"    {item.support:>4}  {item.pattern}")
                for rel in item.pattern.allen_description():
                    lines.append(f"          {rel}")
        return "\n".join(lines)

    write_report("T2_real_datasets", benchmark.pedantic(finalize, rounds=1))

    # Domain motifs must be discoverable (the practicability claim).
    def mined_alphabets(name):
        return [
            frozenset(item.pattern.alphabet)
            for item in _top_patterns.get(name, [])
        ]

    assert _rows, "mining produced no rows"
    asl_hits = PTPMiner(0.1).mine(asl_db).pattern_set()
    assert any(
        {"negation", "NOT"} <= p.alphabet for p in asl_hits
    ), "ASL negation motif not surfaced"
    library_hits = PTPMiner(0.1).mine(library_db).pattern_set()
    assert any(
        {"textbook", "reference"} <= p.alphabet for p in library_hits
    ), "library nesting motif not surfaced"
    stock_hits = PTPMiner(0.1).mine(stock_db).pattern_set()
    assert any(
        {"INDEX-up", "TECH1-up"} <= p.alphabet for p in stock_hits
    ), "stock co-movement motif not surfaced"
    clinical_hits = PTPMiner(0.1).mine(clinical_db).pattern_set()
    assert any(
        {"fever", "antibiotic"} <= p.alphabet for p in clinical_hits
    ), "clinical pathway motif not surfaced"
