"""Experiment F4 — peak memory vs minimum support.

Memory figure of the evaluation: additional peak heap during mining on
the sparse workload as the threshold drops. Expected shape: P-TPMiner's
projection states stay below TPrefixSpan's validation machinery, and far
below IEMiner's levelwise candidate sets (the classic levelwise memory
blow-up; IEMiner runs on a reduced grid as in F1). H-DFS is reported for
completeness — its per-pattern id-lists are compact, which is exactly
why it trades memory for the oracle-validation time F1 shows.
(Measured via tracemalloc, so absolute numbers are Python-heap bytes —
the *relative* ordering is the reproduced claim.)
"""

import pytest

from benchmarks.conftest import write_report
from repro.baselines import HDFSMiner, IEMiner, TPrefixSpanMiner
from repro.core.ptpminer import PTPMiner
from repro.harness.runner import ExperimentRunner, MinerSpec

SUPPORTS = [0.10, 0.08, 0.06]
# Memory tracking multiplies the slow baselines' runtimes; the reduced
# grids keep the figure's shape at a tractable cost (as in F1).
IEMINER_SUPPORTS = [0.10]
HDFS_SUPPORTS = [0.10, 0.08]

MINERS = {
    "P-TPMiner": lambda ms: PTPMiner(ms),
    "TPrefixSpan": lambda ms: TPrefixSpanMiner(ms),
    "H-DFS": lambda ms: HDFSMiner(ms),
    "IEMiner": lambda ms: IEMiner(ms),
}

_runner = ExperimentRunner("F4: peak memory vs min_sup")


@pytest.mark.parametrize("min_sup", SUPPORTS)
@pytest.mark.parametrize("miner_name", list(MINERS))
def test_f4_memory(benchmark, sparse_db, miner_name, min_sup):
    if miner_name == "IEMiner" and min_sup not in IEMINER_SUPPORTS:
        pytest.skip("IEMiner reduced grid (levelwise explosion)")
    if miner_name == "H-DFS" and min_sup not in HDFS_SUPPORTS:
        pytest.skip("H-DFS reduced grid (validation cost under tracing)")
    spec = MinerSpec(miner_name, MINERS[miner_name])

    def run():
        return _runner.run_point(
            sparse_db, min_sup, [spec], track_memory=True
        )

    rows = benchmark.pedantic(run, rounds=1)
    benchmark.extra_info["peak_mem_mb"] = rows[0]["peak_mem_mb"]


def test_f4_report(benchmark, sparse_db):
    def finalize():
        text = _runner.result.table(
            ["miner", "min_sup", "peak_mem_mb", "runtime_s", "patterns"]
        )
        text += "\n\n" + _runner.result.chart("peak_mem_mb", log_y=False)
        return text

    write_report("F4_memory", benchmark.pedantic(finalize, rounds=1))
    for min_sup in SUPPORTS:
        rows = [r for r in _runner.result.rows if r["min_sup"] == min_sup]
        ptp = next(r for r in rows if r["miner"] == "P-TPMiner")
        tps = next(r for r in rows if r["miner"] == "TPrefixSpan")
        assert ptp["peak_mem_mb"] <= tps["peak_mem_mb"] * 1.1
    iem = [r for r in _runner.result.rows if r["miner"] == "IEMiner"]
    ptp_at = {
        r["min_sup"]: r["peak_mem_mb"]
        for r in _runner.result.rows
        if r["miner"] == "P-TPMiner"
    }
    for row in iem:
        assert row["peak_mem_mb"] > ptp_at[row["min_sup"]]
