"""Shared infrastructure for the experiment benchmarks.

Each ``bench_*.py`` file regenerates one table or figure of the paper's
evaluation (see DESIGN.md § 4). Conventions:

* every timing target is measured with ``benchmark.pedantic(rounds=1)`` —
  the miners are deterministic and long-running, so single-shot timing is
  both honest and affordable;
* every experiment ends with a ``test_report_*`` item that assembles the
  regenerated table/figure and writes it to ``benchmarks/results/<id>.txt``
  (the artifacts EXPERIMENTS.md quotes);
* datasets are generated once per session from the named configurations
  in :mod:`repro.datagen.synthetic`, scaled to laptop-sized runs.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.datagen import (
    generate_asl,
    generate_clinical,
    generate_library,
    generate_stock,
    standard_dataset,
)

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def write_report(experiment_id: str, text: str) -> None:
    """Persist a regenerated table/figure under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{experiment_id}.txt"
    path.write_text(text + "\n", encoding="utf-8")


@pytest.fixture(scope="session")
def sparse_db():
    """F1/F4/F5 workload: sparse synthetic, scaled to 400 sequences."""
    return standard_dataset("sparse", num_sequences=400)


@pytest.fixture(scope="session")
def dense_db():
    """F2 workload: dense synthetic, scaled to 250 sequences."""
    return standard_dataset("dense", num_sequences=250)


@pytest.fixture(scope="session")
def scale_unit_db():
    """F3 replication unit (500 sequences)."""
    return standard_dataset("scale-unit", num_sequences=500)


@pytest.fixture(scope="session")
def hybrid_db():
    """F6 workload: 30% point events."""
    return standard_dataset("hybrid", num_sequences=400)


@pytest.fixture(scope="session")
def tiny_db():
    """T3 workload: small enough for the brute-force oracle."""
    return standard_dataset("tiny")


@pytest.fixture(scope="session")
def asl_db():
    return generate_asl(500, seed=7)


@pytest.fixture(scope="session")
def library_db():
    return generate_library(600, seed=31)


@pytest.fixture(scope="session")
def stock_db():
    return generate_stock(500, seed=47)


@pytest.fixture(scope="session")
def clinical_db():
    return generate_clinical(600, seed=59)
