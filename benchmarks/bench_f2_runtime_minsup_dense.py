"""Experiment F2 — runtime vs minimum support, dense synthetic workload.

Same axes as F1 on the dense workload (few labels, long sequences, heavy
overlap). Dense data is the stress case for arrangement miners: more
simultaneous endpoints and longer postfixes. Expected shape: the same
miner ordering as F1, with larger absolute gaps, and the verification
baselines degrading faster as the threshold drops.
"""

import pytest

from benchmarks.conftest import write_report
from repro.baselines import HDFSMiner, IEMiner, TPrefixSpanMiner
from repro.core.ptpminer import PTPMiner
from repro.harness.runner import ExperimentRunner, MinerSpec

SUPPORTS = [0.5, 0.4, 0.3, 0.2]
IEMINER_SUPPORTS = [0.5, 0.4]

MINERS = {
    "P-TPMiner": lambda ms: PTPMiner(ms),
    "TPrefixSpan": lambda ms: TPrefixSpanMiner(ms),
    "H-DFS": lambda ms: HDFSMiner(ms),
    "IEMiner": lambda ms: IEMiner(ms),
}

_runner = ExperimentRunner("F2: runtime vs min_sup (dense)")


@pytest.mark.parametrize("min_sup", SUPPORTS)
@pytest.mark.parametrize("miner_name", list(MINERS))
def test_f2_runtime(benchmark, dense_db, miner_name, min_sup):
    if miner_name == "IEMiner" and min_sup not in IEMINER_SUPPORTS:
        pytest.skip("IEMiner reduced grid (levelwise explosion)")
    spec = MinerSpec(miner_name, MINERS[miner_name])

    def run():
        return _runner.run_point(dense_db, min_sup, [spec])

    rows = benchmark.pedantic(run, rounds=1)
    benchmark.extra_info["patterns"] = rows[0]["patterns"]


def test_f2_report(benchmark, dense_db):
    def finalize():
        text = _runner.result.table(
            ["miner", "min_sup", "runtime_s", "patterns",
             "candidates_considered"]
        )
        text += "\n\n" + _runner.result.chart("runtime_s")
        return text

    write_report("F2_runtime_minsup_dense", benchmark.pedantic(
        finalize, rounds=1
    ))
    lowest = min(SUPPORTS)
    rows = [r for r in _runner.result.rows if r["min_sup"] == lowest]
    ptp = next(r for r in rows if r["miner"] == "P-TPMiner")
    for row in rows:
        if row["miner"] != "P-TPMiner":
            assert row["runtime_s"] > ptp["runtime_s"], row["miner"]
