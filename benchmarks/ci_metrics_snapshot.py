"""CI perf breadcrumb: one small instrumented mine, snapshot to JSON.

Standalone script (no pytest): mines the F1 sparse workload at a single
support threshold with the full observability stack on, writes the
metrics snapshot as JSON, and prints the rendered report to the job
log. CI uploads the JSON as an artifact on every push, so phase
timings, DFS shape, and prune counters form a breadcrumb trail across
commits without running the full benchmark suite.

Usage::

    PYTHONPATH=src python benchmarks/ci_metrics_snapshot.py --out metrics.json
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence

from repro import obs
from repro.core.ptpminer import PTPMiner
from repro.datagen import standard_dataset
from repro.obs.report import render_report

NUM_SEQUENCES = 120
MIN_SUP = 0.10


def main(argv: Sequence[str] | None = None) -> int:
    """Mine once with metrics on; write the snapshot; print the report."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out", default="metrics.json", help="snapshot output path"
    )
    args = parser.parse_args(argv)

    db = standard_dataset("sparse", num_sequences=NUM_SEQUENCES)
    with obs.observe(metrics=True):
        result = PTPMiner(MIN_SUP).mine(db)

    snapshot = result.metrics
    counters = snapshot["counters"]
    expected = result.counters.as_dict()
    mismatched = [
        name
        for name, value in expected.items()
        if counters.get(f"search.{name}") != value
    ]
    if mismatched:
        print(
            "snapshot disagrees with PruneCounters for: "
            + ", ".join(mismatched),
            file=sys.stderr,
        )
        return 1

    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(snapshot, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(
        f"{result.miner}: {len(result.patterns)} patterns from "
        f"{len(db)} sequences at min_sup={MIN_SUP} "
        f"({result.elapsed:.2f}s) -> {args.out}\n"
    )
    print(render_report(snapshot))
    return 0


if __name__ == "__main__":
    sys.exit(main())
