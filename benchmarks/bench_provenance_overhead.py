"""Disabled-path overhead check for the provenance seam.

The provenance collector hooks the PTPMiner search loop through a
module-global seam (``repro.obs.provenance.active_collector``). When no
collector is installed every hook site pays only a hoisted local load
and an ``is not None`` test, which must stay in the noise (budget:
<= ~1% median on wall time).

Unlike the cost seam (``bench_cost_overhead.py``), the collector-ON arm
is *not* a usable upper bound here: provenance records every emitted
pattern's support set and every prune decision, which is deliberately
heavy (tens of percent). So this script measures the disabled path
directly: it builds a hook-free twin of ``repro.core.ptpminer`` by
stripping every provenance statement from the module AST, verifies the
twin mines identical results, and times interleaved A/B pairs --
stripped (no hooks at all) vs. shipped (hooks present, collector off)
-- so slow clock drift and thermal ramp cancel out instead of biasing
one arm. The collector-ON cost is reported once for context.

Usage::

    PYTHONPATH=src python benchmarks/bench_provenance_overhead.py --pairs 7

Prints per-pair timings and the median relative overhead. Standalone
(no pytest); run manually when the search hot path changes.
"""

from __future__ import annotations

import argparse
import ast
import statistics
import sys
import time
import types
from collections.abc import Sequence

import repro.core.ptpminer as _ptpminer_module
from repro.core.config import MinerConfig
from repro.core.ptpminer import PTPMiner
from repro.datagen import standard_dataset
from repro.obs import provenance

NUM_SEQUENCES = 400
MIN_SUP = 0.08

#: Names that exist only to feed the provenance seam. Every statement
#: mentioning one of them (or the seam module alias) is a hook.
_HOOK_NAMES = frozenset(
    {"prov", "prov_root", "span_skipped", "decode_extended", "cand_root",
     "obs_provenance"}
)


class _StripHooks(ast.NodeTransformer):
    """Drop every statement that touches a provenance-only name."""

    def _is_hook(self, node: ast.stmt) -> bool:
        if isinstance(node, ast.FunctionDef) and node.name in _HOOK_NAMES:
            return True  # e.g. decode_extended: only hook sites call it
        return any(
            isinstance(inner, ast.Name) and inner.id in _HOOK_NAMES
            for inner in ast.walk(node)
        )

    def generic_visit(self, node: ast.AST) -> ast.AST:
        node = super().generic_visit(node)
        for field in ("body", "orelse", "finalbody"):
            stmts = getattr(node, field, None)
            if isinstance(stmts, list) and stmts and (
                isinstance(stmts[0], (ast.stmt, ast.Pass))
            ):
                kept = [s for s in stmts if not self._is_hook(s)]
                if not kept and field == "body":
                    kept = [ast.Pass()]
                setattr(node, field, kept)
        return node


def build_stripped_miner() -> type:
    """A PTPMiner twin compiled from hook-free module source."""
    source_file = _ptpminer_module.__file__
    assert source_file is not None
    with open(source_file, encoding="utf-8") as handle:
        tree = ast.parse(handle.read())
    tree = ast.fix_missing_locations(_StripHooks().visit(tree))
    stripped = "\n".join(
        line
        for line in ast.unparse(tree).splitlines()
        if "obs_provenance" not in line  # the import itself
    )
    module = types.ModuleType("repro.core._ptpminer_hookfree")
    module.__file__ = source_file
    # dataclass machinery resolves string annotations through
    # sys.modules[cls.__module__], so the twin must be importable.
    sys.modules[module.__name__] = module
    exec(  # noqa: S102 -- our own transformed source
        compile(stripped, source_file, "exec"), module.__dict__
    )
    return module.PTPMiner


def _time_mine(db, config, miner_cls, *, collect: bool = False) -> float:
    miner = miner_cls.from_config(config)
    if collect:
        with provenance.use_collector():
            t0 = time.perf_counter()
            miner.mine(db)
            return time.perf_counter() - t0
    t0 = time.perf_counter()
    miner.mine(db)
    return time.perf_counter() - t0


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--pairs", type=int, default=7, help="number of A/B pairs"
    )
    args = parser.parse_args(argv)

    db = standard_dataset("sparse", num_sequences=NUM_SEQUENCES)
    config = MinerConfig(min_sup=MIN_SUP)
    stripped_cls = build_stripped_miner()

    # The twin must be behaviourally identical before its timings mean
    # anything.
    reference = PTPMiner.from_config(config).mine(db)
    twin = stripped_cls.from_config(config).mine(db)
    assert twin.as_dict() == reference.as_dict(), (
        "hook-free twin disagrees with the shipped miner"
    )

    # Warm-up: one run of each arm so import/alloc effects hit neither.
    _time_mine(db, config, stripped_cls)
    _time_mine(db, config, PTPMiner)

    ratios = []
    for pair in range(args.pairs):
        hookfree = _time_mine(db, config, stripped_cls)
        disabled = _time_mine(db, config, PTPMiner)
        ratios.append(disabled / hookfree - 1.0)
        print(
            f"pair {pair}: hook-free={hookfree:.4f}s "
            f"disabled={disabled:.4f}s "
            f"overhead={100 * ratios[-1]:+.2f}%"
        )

    median = statistics.median(ratios)
    print(f"median disabled-path overhead: {100 * median:+.2f}% "
          "(budget <= ~1%)")

    on = _time_mine(db, config, PTPMiner, collect=True)
    off = _time_mine(db, config, PTPMiner)
    print(
        f"for context, collector-ON costs {100 * (on / off - 1.0):+.1f}% "
        "-- provenance records every pattern's support set and every "
        "prune decision, so enable it for audits, not benchmarks."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
