"""Legacy shim so `pip install -e .` works without the `wheel` package.

The offline environment ships setuptools 65 / pip 23 without `wheel`;
PEP 660 editable builds then fail with "invalid command 'bdist_wheel'".
With this setup.py and no [build-system] table in pyproject.toml, pip
falls back to the legacy `setup.py develop` path, which needs neither.
All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
